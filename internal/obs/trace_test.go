package obs

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context must carry no trace")
	}
	tr := New("q")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context round trip")
	}
	if got := WithTrace(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil trace must not be stored")
	}
	if FromContext(nil) != nil {
		t.Fatal("nil context must yield nil trace")
	}
}

func TestSpanDepthAndOrder(t *testing.T) {
	tr := New("q")
	endOuter := tr.StartSpan("outer")
	endInner := tr.StartSpan("inner")
	endInner()
	endOuter()
	endNext := tr.StartSpan("next")
	endNext()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: inner closes first.
	wantNames := []string{"inner", "outer", "next"}
	wantDepth := []int{1, 0, 0}
	for i, s := range spans {
		if s.Name != wantNames[i] || s.Depth != wantDepth[i] {
			t.Errorf("span %d = %s@%d, want %s@%d", i, s.Name, s.Depth, wantNames[i], wantDepth[i])
		}
	}
	// Top-level spans must account for (at most) the wall time.
	var top time.Duration
	for _, s := range spans {
		if s.Depth == 0 {
			top += s.Dur
		}
	}
	if top > tr.Wall() {
		t.Errorf("top-level span sum %v exceeds wall %v", top, tr.Wall())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := New("q")
	end := tr.StartSpan("s")
	end()
	end()
	end()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("repeated end calls recorded %d spans, want 1", got)
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := New("q")
	w1 := tr.Finish()
	time.Sleep(time.Millisecond)
	if w2 := tr.Finish(); w2 != w1 {
		t.Fatalf("second Finish changed wall: %v -> %v", w1, w2)
	}
}

func TestAddConcurrent(t *testing.T) {
	tr := New("q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Counters()["hits"]; got != 8*500 {
		t.Fatalf("hits = %d, want %d", got, 8*500)
	}
}

func TestRecordFormat(t *testing.T) {
	tr := New(`MATCH (a) RETURN a`)
	end := tr.StartSpan("parse")
	end()
	tr.Add("cache.page.hits", 3)
	tr.Add("adj.scans", 1)
	tr.Finish()
	rec := tr.Record()
	if strings.ContainsRune(rec, '\n') {
		t.Fatal("record must be one line")
	}
	// Counters render sorted by name after the spans.
	re := regexp.MustCompile(`^trace="MATCH \(a\) RETURN a" wall_ns=\d+ span=parse@0:\d+ ctr=adj\.scans:1 ctr=cache\.page\.hits:3$`)
	if !re.MatchString(rec) {
		t.Fatalf("record %q does not match schema %q", rec, re)
	}
}

// TestNilTraceFastPath exercises the tracing-off path end to end: every
// method must no-op without allocating observable state.
func TestNilTraceFastPath(t *testing.T) {
	var tr *Trace
	end := tr.StartSpan("x")
	end()
	tr.Add("c", 1)
	if tr.Finish() != 0 || tr.Wall() != 0 {
		t.Fatal("nil trace times must be zero")
	}
	if tr.Spans() != nil || tr.Counters() != nil {
		t.Fatal("nil trace must carry no spans or counters")
	}
	if tr.Record() != "" || tr.Name() != "" {
		t.Fatal("nil trace renders empty")
	}
}

func TestProfileRunsFn(t *testing.T) {
	ran := 0
	Profile(context.Background(), func(ctx context.Context) { ran++ }, "task", "t1")
	Profile(nil, func(ctx context.Context) {
		ran++
		if ctx == nil {
			t.Error("Profile must supply a context")
		}
	})
	Profile(context.Background(), func(ctx context.Context) { ran++ }, "odd")
	if ran != 3 {
		t.Fatalf("fn ran %d times, want 3", ran)
	}
}
