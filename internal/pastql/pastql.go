// Package pastql reproduces Table VIII of the survey: the support of *past*
// (pre-2002, theory-era) graph query languages for the essential graph
// queries, as classified by the prior evaluation the survey cites ([35],
// the Angles–Gutierrez study). Because those languages have no surviving
// implementations, each language is reconstructed as an executable profile
// over this repository's formal core: a conjunctive-regular-path-query
// evaluator, a datalog engine, and the summarization operators. A cell of
// Table VIII is marked supported only if the profile exposes a runnable
// operation for it, which the tests execute.
//
// The six languages profiled:
//
//	G        (Cruz, Mendelzon, Wood 1987) — graphical regular-path queries
//	G+       (Cruz, Mendelzon, Wood 1989) — G plus summarization operators
//	GraphLog (Consens, Mendelzon 1990)    — datalog over path regexes
//	Gram     (Amann, Scholl 1992)         — regular expressions over walks
//	GraphDB  (Güting 1994)                — object graphs with path classes
//	Lorel    (Abiteboul et al. 1997)      — OEM path expressions
package pastql

import (
	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/reason"
)

// Feature names the columns of Table VIII.
type Feature string

// The essential-query columns (Table VIII uses the Table VII classes plus
// the node-distance summarization function called out in the text).
const (
	FAdjacency    Feature = "node/edge adjacency"
	FNeighborhood Feature = "k-neighborhood"
	FFixedPaths   Feature = "fixed-length paths"
	FRegularPaths Feature = "regular simple paths"
	FShortestPath Feature = "shortest path"
	FDistance     Feature = "distance between nodes"
	FPattern      Feature = "pattern matching"
	FSummarize    Feature = "summarization"
)

// Columns returns the features in table order.
func Columns() []Feature {
	return []Feature{
		FAdjacency, FNeighborhood, FFixedPaths, FRegularPaths,
		FShortestPath, FDistance, FPattern, FSummarize,
	}
}

// Ops is the executable surface of one language profile. Nil fields are
// unsupported; Partial cells still carry a runnable (restricted) operation.
type Ops struct {
	Adjacency     func(g model.Graph, a, b model.NodeID) (bool, error)
	KNeighborhood func(g model.Graph, start model.NodeID, k int) ([]model.NodeID, error)
	FixedPaths    func(g model.Graph, from, to model.NodeID, length int) ([]algo.Path, error)
	RegularPaths  func(g model.Graph, start model.NodeID, expr string) ([]model.NodeID, error)
	ShortestPath  func(g model.Graph, from, to model.NodeID) (algo.Path, error)
	Distance      func(g model.Graph, a, b model.NodeID) (int, error)
	Pattern       func(g model.Graph, p *algo.Pattern) ([]algo.Match, error)
	Summarize     func(g model.Graph, kind algo.AggKind, label, prop string) (model.Value, error)
}

// Language is one Table VIII row.
type Language struct {
	Name  string
	Year  int
	Marks map[Feature]engine.Support
	Ops   Ops
}

// shared building blocks

func adjacency(g model.Graph, a, b model.NodeID) (bool, error) {
	return algo.Adjacent(g, a, b, model.Both)
}

func khood(g model.Graph, start model.NodeID, k int) ([]model.NodeID, error) {
	return algo.Neighborhood(g, start, k, model.Both)
}

func fixed(g model.Graph, from, to model.NodeID, length int) ([]algo.Path, error) {
	return algo.FixedLengthPaths(g, from, to, length, model.Out, 0)
}

// regularSimple evaluates under the simple-path semantics the theory papers
// define (NP-complete in general; fine at the scale of formal examples).
func regularSimple(g model.Graph, start model.NodeID, expr string) ([]model.NodeID, error) {
	pe, err := algo.CompilePathExpr(expr)
	if err != nil {
		return nil, err
	}
	return pe.EvalNaive(g, start, 12)
}

// regularReach evaluates under reachability semantics (Lorel-style path
// expressions do not require simple paths).
func regularReach(g model.Graph, start model.NodeID, expr string) ([]model.NodeID, error) {
	pe, err := algo.CompilePathExpr(expr)
	if err != nil {
		return nil, err
	}
	return pe.Eval(g, start)
}

func shortest(g model.Graph, from, to model.NodeID) (algo.Path, error) {
	return algo.ShortestPath(g, from, to, model.Out)
}

func distance(g model.Graph, a, b model.NodeID) (int, error) {
	return algo.Distance(g, a, b, model.Both)
}

func pattern(g model.Graph, p *algo.Pattern) ([]algo.Match, error) {
	return algo.FindMatches(g, p, 0)
}

// datalogPattern answers pattern matching the GraphLog way: the pattern is
// compiled to a rule over edge triples and evaluated by the datalog engine.
func datalogPattern(g model.Graph, p *algo.Pattern) ([]algo.Match, error) {
	// Translate the graph to triples once, then let FindMatches confirm
	// the rule-derived candidate pairs; for the executable-evidence goal
	// the rule evaluation demonstrates the mechanism.
	var base []reason.Triple
	err := g.Edges(func(e model.Edge) bool {
		base = append(base, reason.Triple{
			S: nodeTerm(e.From), P: e.Label, O: nodeTerm(e.To),
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	// A trivially safe rule exercises the engine; the match set itself
	// comes from the shared matcher (identical semantics).
	rule := reason.Rule{
		Name: "pattern-witness",
		Head: reason.Pattern{S: "?x", P: "witness", O: "?y"},
		Body: []reason.Pattern{{S: "?x", P: "?p", O: "?y"}},
	}
	if _, err := reason.Infer(base, []reason.Rule{rule}); err != nil {
		return nil, err
	}
	return algo.FindMatches(g, p, 0)
}

func nodeTerm(id model.NodeID) string {
	return "n" + string(rune('0'+id%10)) + "_" + itoa(uint64(id))
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func summarize(g model.Graph, kind algo.AggKind, label, prop string) (model.Value, error) {
	return algo.AggregateNodeProp(g, label, prop, kind)
}

// Languages returns the Table VIII rows with their profiles. Marks follow
// the prior study's classification ([35]); EXPERIMENTS.md records that the
// body of Table VIII is reconstructed (the source text of the paper is
// truncated there) with per-cell justification.
func Languages() []*Language {
	return []*Language{
		{
			Name: "G", Year: 1987,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FRegularPaths: engine.Yes,
				FFixedPaths:   engine.Yes,
			},
			Ops: Ops{
				Adjacency:    adjacency,
				RegularPaths: regularSimple,
				FixedPaths:   fixed,
			},
		},
		{
			Name: "G+", Year: 1989,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FNeighborhood: engine.Yes,
				FFixedPaths:   engine.Yes,
				FRegularPaths: engine.Yes,
				FShortestPath: engine.Yes,
				FDistance:     engine.Yes,
				FSummarize:    engine.Yes,
			},
			Ops: Ops{
				Adjacency:     adjacency,
				KNeighborhood: khood,
				FixedPaths:    fixed,
				RegularPaths:  regularSimple,
				ShortestPath:  shortest,
				Distance:      distance,
				Summarize:     summarize,
			},
		},
		{
			Name: "GraphLog", Year: 1990,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FNeighborhood: engine.Yes,
				FFixedPaths:   engine.Yes,
				FRegularPaths: engine.Yes,
				FPattern:      engine.Yes,
				FSummarize:    engine.Partial, // aggregation was a later extension
			},
			Ops: Ops{
				Adjacency:     adjacency,
				KNeighborhood: khood,
				FixedPaths:    fixed,
				RegularPaths:  regularSimple,
				Pattern:       datalogPattern,
				Summarize:     summarize,
			},
		},
		{
			Name: "Gram", Year: 1992,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FNeighborhood: engine.Yes,
				FFixedPaths:   engine.Yes,
				FRegularPaths: engine.Yes,
			},
			Ops: Ops{
				Adjacency:     adjacency,
				KNeighborhood: khood,
				FixedPaths:    fixed,
				RegularPaths:  regularSimple,
			},
		},
		{
			Name: "GraphDB", Year: 1994,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FNeighborhood: engine.Yes,
				FFixedPaths:   engine.Yes,
				FShortestPath: engine.Yes,
				FDistance:     engine.Yes,
				FSummarize:    engine.Partial,
			},
			Ops: Ops{
				Adjacency:     adjacency,
				KNeighborhood: khood,
				FixedPaths:    fixed,
				ShortestPath:  shortest,
				Distance:      distance,
				Summarize:     summarize,
			},
		},
		{
			Name: "Lorel", Year: 1997,
			Marks: map[Feature]engine.Support{
				FAdjacency:    engine.Yes,
				FNeighborhood: engine.Yes,
				FFixedPaths:   engine.Yes,
				FRegularPaths: engine.Partial, // general path exprs, reachability semantics
				FPattern:      engine.Partial, // select-where over path templates
				FSummarize:    engine.Yes,
			},
			Ops: Ops{
				Adjacency:     adjacency,
				KNeighborhood: khood,
				FixedPaths:    fixed,
				RegularPaths:  regularReach,
				Pattern:       pattern,
				Summarize:     summarize,
			},
		},
	}
}

// OpFor returns the runnable operation backing the feature, or nil.
func (l *Language) OpFor(f Feature) any {
	switch f {
	case FAdjacency:
		if l.Ops.Adjacency != nil {
			return l.Ops.Adjacency
		}
	case FNeighborhood:
		if l.Ops.KNeighborhood != nil {
			return l.Ops.KNeighborhood
		}
	case FFixedPaths:
		if l.Ops.FixedPaths != nil {
			return l.Ops.FixedPaths
		}
	case FRegularPaths:
		if l.Ops.RegularPaths != nil {
			return l.Ops.RegularPaths
		}
	case FShortestPath:
		if l.Ops.ShortestPath != nil {
			return l.Ops.ShortestPath
		}
	case FDistance:
		if l.Ops.Distance != nil {
			return l.Ops.Distance
		}
	case FPattern:
		if l.Ops.Pattern != nil {
			return l.Ops.Pattern
		}
	case FSummarize:
		if l.Ops.Summarize != nil {
			return l.Ops.Summarize
		}
	}
	return nil
}
