package pastql

import (
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func formalGraph(t *testing.T) (*memgraph.Graph, []model.NodeID) {
	t.Helper()
	g := memgraph.New()
	ids := make([]model.NodeID, 5)
	for i := range ids {
		ids[i], _ = g.AddNode("V", model.Props("i", i))
	}
	g.AddEdge("a", ids[0], ids[1], nil)
	g.AddEdge("a", ids[1], ids[2], nil)
	g.AddEdge("b", ids[2], ids[3], nil)
	g.AddEdge("a", ids[0], ids[4], nil)
	g.AddEdge("b", ids[4], ids[3], nil)
	return g, ids
}

func TestSixLanguagesProfiled(t *testing.T) {
	langs := Languages()
	if len(langs) != 6 {
		t.Fatalf("languages = %d", len(langs))
	}
	names := map[string]bool{}
	for _, l := range langs {
		names[l.Name] = true
		if l.Year < 1985 || l.Year > 2000 {
			t.Errorf("%s year %d outside the pre-2002 era", l.Name, l.Year)
		}
	}
	for _, want := range []string{"G", "G+", "GraphLog", "Gram", "GraphDB", "Lorel"} {
		if !names[want] {
			t.Errorf("missing language %s", want)
		}
	}
}

// Every marked cell must be backed by a runnable operation and vice versa.
func TestMarksMatchOps(t *testing.T) {
	for _, l := range Languages() {
		for _, f := range Columns() {
			mark := l.Marks[f]
			op := l.OpFor(f)
			if mark != engine.No && op == nil {
				t.Errorf("%s: %s marked %q but has no operation", l.Name, f, mark.Mark())
			}
			if mark == engine.No && op != nil {
				t.Errorf("%s: %s has an operation but no mark", l.Name, f)
			}
		}
	}
}

// Execute every supported operation of every language on the formal graph.
func TestAllOpsExecute(t *testing.T) {
	for _, l := range Languages() {
		t.Run(l.Name, func(t *testing.T) {
			g, ids := formalGraph(t)
			if l.Ops.Adjacency != nil {
				ok, err := l.Ops.Adjacency(g, ids[0], ids[1])
				if err != nil || !ok {
					t.Errorf("adjacency: %v %v", ok, err)
				}
			}
			if l.Ops.KNeighborhood != nil {
				nb, err := l.Ops.KNeighborhood(g, ids[0], 1)
				if err != nil || len(nb) != 2 {
					t.Errorf("khood: %v %v", nb, err)
				}
			}
			if l.Ops.FixedPaths != nil {
				ps, err := l.Ops.FixedPaths(g, ids[0], ids[3], 2)
				if err != nil || len(ps) != 1 { // 0-4-3
					t.Errorf("fixed: %v %v", ps, err)
				}
			}
			if l.Ops.RegularPaths != nil {
				ns, err := l.Ops.RegularPaths(g, ids[0], "a/a/b|a/b")
				if err != nil {
					t.Fatalf("regular: %v", err)
				}
				found := false
				for _, n := range ns {
					if n == ids[3] {
						found = true
					}
				}
				if !found {
					t.Errorf("regular paths missed node 3: %v", ns)
				}
			}
			if l.Ops.ShortestPath != nil {
				p, err := l.Ops.ShortestPath(g, ids[0], ids[3])
				if err != nil || p.Len() != 2 {
					t.Errorf("shortest: %v %v", p, err)
				}
			}
			if l.Ops.Distance != nil {
				d, err := l.Ops.Distance(g, ids[0], ids[3])
				if err != nil || d != 2 {
					t.Errorf("distance: %v %v", d, err)
				}
			}
			if l.Ops.Pattern != nil {
				pat, _ := algo.NewPattern(
					[]algo.PatternNode{{Var: "x"}, {Var: "y"}},
					[]algo.PatternEdge{{From: 0, To: 1, Label: "b"}},
				)
				ms, err := l.Ops.Pattern(g, pat)
				if err != nil || len(ms) != 2 {
					t.Errorf("pattern: %v %v", ms, err)
				}
			}
			if l.Ops.Summarize != nil {
				v, err := l.Ops.Summarize(g, algo.AggCount, "V", "")
				if err != nil {
					t.Fatal(err)
				}
				if n, _ := v.AsInt(); n != 5 {
					t.Errorf("summarize count = %v", v)
				}
			}
		})
	}
}

// The G family uses simple-path semantics; Lorel uses reachability
// semantics. On a cyclic graph they differ — verify the distinction the
// survey's complexity discussion rests on.
func TestSemanticsDifferOnCycles(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("V", nil)
	b, _ := g.AddNode("V", nil)
	g.AddEdge("x", a, b, nil)
	g.AddEdge("x", b, a, nil)

	var gLang, lorel *Language
	for _, l := range Languages() {
		switch l.Name {
		case "G":
			gLang = l
		case "Lorel":
			lorel = l
		}
	}
	// x/x/x from a: simple paths cannot revisit, so G finds nothing at
	// length 3; reachability semantics finds b.
	gRes, err := gLang.Ops.RegularPaths(g, a, "x/x/x")
	if err != nil {
		t.Fatal(err)
	}
	lRes, err := lorel.Ops.RegularPaths(g, a, "x/x/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(gRes) != 0 {
		t.Errorf("G (simple paths) found %v", gRes)
	}
	if len(lRes) != 1 || lRes[0] != b {
		t.Errorf("Lorel (reachability) found %v", lRes)
	}
}

func TestColumnsOrder(t *testing.T) {
	cols := Columns()
	if len(cols) != 8 || cols[0] != FAdjacency || cols[7] != FSummarize {
		t.Errorf("columns = %v", cols)
	}
}
