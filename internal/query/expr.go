package query

import (
	"fmt"
	"strconv"
	"strings"

	"gdbm/internal/model"
)

// Entry is one binding in a row: a node, an edge, or a scalar value.
type Entry struct {
	Kind  EntryKind
	Node  model.Node
	Edge  model.Edge
	Value model.Value
}

// EntryKind discriminates Entry.
type EntryKind uint8

const (
	EntryValue EntryKind = iota
	EntryNode
	EntryEdge
)

// NodeEntry wraps a node binding.
func NodeEntry(n model.Node) Entry { return Entry{Kind: EntryNode, Node: n} }

// EdgeEntry wraps an edge binding.
func EdgeEntry(e model.Edge) Entry { return Entry{Kind: EntryEdge, Edge: e} }

// ValueEntry wraps a scalar binding.
func ValueEntry(v model.Value) Entry { return Entry{Kind: EntryValue, Value: v} }

// Scalar reduces the entry to a value: nodes and edges reduce to their IDs.
func (e Entry) Scalar() model.Value {
	switch e.Kind {
	case EntryNode:
		return model.Int(int64(e.Node.ID))
	case EntryEdge:
		return model.Int(int64(e.Edge.ID))
	default:
		return e.Value
	}
}

// Prop resolves a property access against the entry.
func (e Entry) Prop(name string) model.Value {
	switch e.Kind {
	case EntryNode:
		return e.Node.Props.Get(name)
	case EntryEdge:
		return e.Edge.Props.Get(name)
	default:
		return model.Null()
	}
}

// Row is the binding environment flowing through query operators.
type Row map[string]Entry

// Clone copies the row.
func (r Row) Clone() Row {
	c := make(Row, len(r)+2)
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Expr is an evaluable expression over a Row.
type Expr interface {
	Eval(r Row) (model.Value, error)
	String() string
}

// Lit is a literal value.
type Lit struct{ V model.Value }

// Eval implements Expr.
func (l Lit) Eval(Row) (model.Value, error) { return l.V, nil }

// String implements Expr.
func (l Lit) String() string {
	if l.V.Kind() == model.KindString {
		return strconv.Quote(l.V.String())
	}
	return l.V.String()
}

// Var references a binding; with Prop set it accesses a property.
type Var struct {
	Name string
	Prop string
}

// Eval implements Expr.
func (v Var) Eval(r Row) (model.Value, error) {
	e, ok := r[v.Name]
	if !ok {
		return model.Null(), fmt.Errorf("unbound variable %q", v.Name)
	}
	if v.Prop != "" {
		return e.Prop(v.Prop), nil
	}
	return e.Scalar(), nil
}

// String implements Expr.
func (v Var) String() string {
	if v.Prop != "" {
		return v.Name + "." + v.Prop
	}
	return v.Name
}

// BinOp applies a binary operator.
type BinOp struct {
	Op   string // = <> < <= > >= + - * / and or
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(r Row) (model.Value, error) {
	lv, err := b.L.Eval(r)
	if err != nil {
		return model.Null(), err
	}
	// Short-circuit boolean operators.
	switch b.Op {
	case "and":
		if lb, ok := lv.AsBool(); ok && !lb {
			return model.Bool(false), nil
		}
		rv, err := b.R.Eval(r)
		if err != nil {
			return model.Null(), err
		}
		lb, lok := lv.AsBool()
		rb, rok := rv.AsBool()
		if !lok || !rok {
			return model.Null(), fmt.Errorf("AND requires booleans, got %v and %v", lv.Kind(), rv.Kind())
		}
		return model.Bool(lb && rb), nil
	case "or":
		if lb, ok := lv.AsBool(); ok && lb {
			return model.Bool(true), nil
		}
		rv, err := b.R.Eval(r)
		if err != nil {
			return model.Null(), err
		}
		lb, lok := lv.AsBool()
		rb, rok := rv.AsBool()
		if !lok || !rok {
			return model.Null(), fmt.Errorf("OR requires booleans, got %v and %v", lv.Kind(), rv.Kind())
		}
		return model.Bool(lb || rb), nil
	}
	rv, err := b.R.Eval(r)
	if err != nil {
		return model.Null(), err
	}
	switch b.Op {
	case "=":
		return model.Bool(lv.Equal(rv)), nil
	case "<>", "!=":
		return model.Bool(!lv.Equal(rv)), nil
	case "<":
		return model.Bool(lv.Compare(rv) < 0), nil
	case "<=":
		return model.Bool(lv.Compare(rv) <= 0), nil
	case ">":
		return model.Bool(lv.Compare(rv) > 0), nil
	case ">=":
		return model.Bool(lv.Compare(rv) >= 0), nil
	case "+", "-", "*", "/":
		return arith(b.Op, lv, rv)
	}
	return model.Null(), fmt.Errorf("unknown operator %q", b.Op)
}

func arith(op string, a, b model.Value) (model.Value, error) {
	if op == "+" && (a.Kind() == model.KindString || b.Kind() == model.KindString) {
		return model.Str(a.String() + b.String()), nil
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return model.Null(), fmt.Errorf("arithmetic on non-numeric values %v, %v", a, b)
	}
	var f float64
	switch op {
	case "+":
		f = af + bf
	case "-":
		f = af - bf
	case "*":
		f = af * bf
	case "/":
		if bf == 0 {
			return model.Null(), fmt.Errorf("division by zero")
		}
		f = af / bf
	}
	// Keep integer arithmetic integral.
	ai, aInt := a.AsInt()
	bi, bInt := b.AsInt()
	if aInt && bInt && op != "/" {
		switch op {
		case "+":
			return model.Int(ai + bi), nil
		case "-":
			return model.Int(ai - bi), nil
		case "*":
			return model.Int(ai * bi), nil
		}
	}
	return model.Float(f), nil
}

// String implements Expr.
func (b BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(r Row) (model.Value, error) {
	v, err := n.E.Eval(r)
	if err != nil {
		return model.Null(), err
	}
	b, ok := v.AsBool()
	if !ok {
		return model.Null(), fmt.Errorf("NOT requires a boolean, got %v", v.Kind())
	}
	return model.Bool(!b), nil
}

// String implements Expr.
func (n Not) String() string { return "(not " + n.E.String() + ")" }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// Eval implements Expr.
func (n Neg) Eval(r Row) (model.Value, error) {
	v, err := n.E.Eval(r)
	if err != nil {
		return model.Null(), err
	}
	if i, ok := v.AsInt(); ok {
		return model.Int(-i), nil
	}
	if f, ok := v.AsFloat(); ok {
		return model.Float(-f), nil
	}
	return model.Null(), fmt.Errorf("negation of non-numeric %v", v)
}

// String implements Expr.
func (n Neg) String() string { return "(-" + n.E.String() + ")" }

// Call invokes a scalar builtin. Aggregates are handled by the Aggregate
// operator, not here.
type Call struct {
	Fn   string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(r Row) (model.Value, error) {
	args := make([]model.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(r)
		if err != nil {
			return model.Null(), err
		}
		args[i] = v
	}
	switch strings.ToLower(c.Fn) {
	case "id":
		// id(x) — the identifier of a bound node/edge; Var.Eval already
		// reduces entities to IDs, so this is identity on its arg.
		if len(args) != 1 {
			return model.Null(), fmt.Errorf("id() takes 1 argument")
		}
		return args[0], nil
	case "length", "len":
		if len(args) != 1 {
			return model.Null(), fmt.Errorf("length() takes 1 argument")
		}
		if s, ok := args[0].AsString(); ok {
			return model.Int(int64(len(s))), nil
		}
		return model.Null(), fmt.Errorf("length() requires a string")
	case "lower":
		if s, ok := args[0].AsString(); ok && len(args) == 1 {
			return model.Str(strings.ToLower(s)), nil
		}
		return model.Null(), fmt.Errorf("lower() requires a string")
	case "upper":
		if s, ok := args[0].AsString(); ok && len(args) == 1 {
			return model.Str(strings.ToUpper(s)), nil
		}
		return model.Null(), fmt.Errorf("upper() requires a string")
	case "abs":
		if i, ok := args[0].AsInt(); ok && len(args) == 1 {
			if i < 0 {
				return model.Int(-i), nil
			}
			return model.Int(i), nil
		}
		if f, ok := args[0].AsFloat(); ok && len(args) == 1 {
			if f < 0 {
				return model.Float(-f), nil
			}
			return model.Float(f), nil
		}
		return model.Null(), fmt.Errorf("abs() requires a number")
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return model.Null(), nil
	}
	return model.Null(), fmt.Errorf("unknown function %q", c.Fn)
}

// String implements Expr.
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// AggFuncs names the aggregate functions recognized by parsers; expressions
// with these heads are routed to the Aggregate operator.
var AggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}
