package query

import (
	"strconv"
	"strings"

	"gdbm/internal/model"
)

// ParseExpr parses an expression from the lexer using precedence climbing.
// Grammar (lowest to highest precedence):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add (( = | <> | != | < | <= | > | >= ) add)?
//	add  := mul (( + | - ) mul)*
//	mul  := unary (( * | / ) unary)*
//	unary:= - unary | primary
//	prim := literal | var (. prop)? | fn(args) | ( or )
//
// Variables may be plain identifiers or, when the lexer is in IRIMode,
// ?name tokens.
func ParseExpr(l *Lexer) (Expr, error) { return parseOr(l) }

func parseOr(l *Lexer) (Expr, error) {
	left, err := parseAnd(l)
	if err != nil {
		return nil, err
	}
	for l.AcceptIdent("or") || l.AcceptPunct("||") {
		right, err := parseAnd(l)
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: "or", L: left, R: right}
	}
	return left, nil
}

func parseAnd(l *Lexer) (Expr, error) {
	left, err := parseNot(l)
	if err != nil {
		return nil, err
	}
	for l.AcceptIdent("and") || l.AcceptPunct("&&") {
		right, err := parseNot(l)
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: "and", L: left, R: right}
	}
	return left, nil
}

func parseNot(l *Lexer) (Expr, error) {
	if l.AcceptIdent("not") || l.AcceptPunct("!") {
		e, err := parseNot(l)
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return parseCmp(l)
}

func parseCmp(l *Lexer) (Expr, error) {
	left, err := parseAdd(l)
	if err != nil {
		return nil, err
	}
	t, err := l.Peek()
	if err != nil {
		return nil, err
	}
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			l.Next()
			right, err := parseAdd(l)
			if err != nil {
				return nil, err
			}
			return BinOp{Op: t.Text, L: left, R: right}, nil
		}
	}
	return left, nil
}

func parseAdd(l *Lexer) (Expr, error) {
	left, err := parseMul(l)
	if err != nil {
		return nil, err
	}
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind != TokPunct || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		l.Next()
		right, err := parseMul(l)
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: t.Text, L: left, R: right}
	}
}

func parseMul(l *Lexer) (Expr, error) {
	left, err := parseUnary(l)
	if err != nil {
		return nil, err
	}
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind != TokPunct || (t.Text != "*" && t.Text != "/") {
			return left, nil
		}
		l.Next()
		right, err := parseUnary(l)
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: t.Text, L: left, R: right}
	}
}

func parseUnary(l *Lexer) (Expr, error) {
	if l.AcceptPunct("-") {
		e, err := parseUnary(l)
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return parsePrimary(l)
}

func parsePrimary(l *Lexer) (Expr, error) {
	t, err := l.Next()
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case TokNumber:
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, l.Errorf(t.Pos, "bad number %q", t.Text)
			}
			return Lit{model.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, l.Errorf(t.Pos, "bad number %q", t.Text)
		}
		return Lit{model.Int(i)}, nil
	case TokString:
		return Lit{model.Str(t.Text)}, nil
	case TokVar: // ?name
		return Var{Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			e, err := parseOr(l)
			if err != nil {
				return nil, err
			}
			if err := l.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, l.Errorf(t.Pos, "unexpected %q in expression", t.Text)
	case TokIdent:
		switch strings.ToLower(t.Text) {
		case "true":
			return Lit{model.Bool(true)}, nil
		case "false":
			return Lit{model.Bool(false)}, nil
		case "null":
			return Lit{model.Null()}, nil
		}
		// Function call?
		if l.AcceptPunct("(") {
			var args []Expr
			if !l.AcceptPunct(")") {
				for {
					// count(*) support.
					if p, _ := l.Peek(); p.Kind == TokPunct && p.Text == "*" {
						l.Next()
						args = append(args, Lit{model.Str("*")})
					} else {
						a, err := parseOr(l)
						if err != nil {
							return nil, err
						}
						args = append(args, a)
					}
					if l.AcceptPunct(",") {
						continue
					}
					if err := l.ExpectPunct(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return Call{Fn: t.Text, Args: args}, nil
		}
		// Property access?
		if l.AcceptPunct(".") {
			pt, err := l.Next()
			if err != nil {
				return nil, err
			}
			if pt.Kind != TokIdent {
				return nil, l.Errorf(pt.Pos, "expected property name after '.'")
			}
			return Var{Name: t.Text, Prop: pt.Text}, nil
		}
		return Var{Name: t.Text}, nil
	}
	return nil, l.Errorf(t.Pos, "unexpected end of expression")
}

// ParseExprString parses a complete standalone expression.
func ParseExprString(s string) (Expr, error) {
	l := NewLexer(s)
	e, err := ParseExpr(l)
	if err != nil {
		return nil, err
	}
	t, err := l.Peek()
	if err != nil {
		return nil, err
	}
	if t.Kind != TokEOF {
		return nil, l.Errorf(t.Pos, "trailing input %q", t.Text)
	}
	return e, nil
}
