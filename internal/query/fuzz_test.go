package query_test

import (
	"testing"

	"gdbm/internal/query"
	"gdbm/internal/query/gql"
	"gdbm/internal/query/sparqlish"
)

// FuzzParseQuery drives every parser in the query stack — the shared
// expression grammar, the Cypher-like gql and the SPARQL-like sparqlish —
// over one byte stream. Errors are the expected outcome for most inputs;
// the target exists to prove no input panics a parser or hangs the lexer.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		`MATCH (a:Person {name: 'ada'})-[:knows]->(b) RETURN b.name AS b`,
		`MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS name ORDER BY name`,
		`MATCH (a:Person {name: 'ada'}), (b:Person {name: 'bob'}) CREATE (a)-[:knows {since: 2019}]->(b)`,
		`MATCH (b)<-[:knows]-(a:Person {name: 'ada'}) RETURN b.name AS b`,
		`SELECT ?name WHERE { ?x <type> "person" . ?x <name> ?name . }`,
		`SELECT DISTINCT ?n WHERE { ?x <name> ?n . FILTER (?n != "Bob") } ORDER BY ?n LIMIT 1`,
		`ASK { <ada> <knows> ?o . }`,
		`INSERT DATA { <ada> <knows> <bob> . }`,
		`a.age + 1 >= 2 * (3 - b.rank) AND NOT (a.name = 'x' OR b.ok)`,
		`'unterminated`,
		"\x00\xff(((((",
		``,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Results and errors are irrelevant; panics and hangs are the bugs.
		query.ParseExprString(input)
		gql.Parse(input)
		sparqlish.Parse(input)
	})
}
