package gql

import (
	"context"
	"errors"
	"fmt"

	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query"
	"gdbm/internal/query/plan"
)

// Mutator is the engine surface write statements need.
type Mutator interface {
	plan.Source
	AddNode(label string, props model.Properties) (model.NodeID, error)
	AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error)
	RemoveNode(id model.NodeID) error
	RemoveEdge(id model.EdgeID) error
	SetNodeProp(id model.NodeID, key string, v model.Value) error
	SetEdgeProp(id model.EdgeID, key string, v model.Value) error
}

// Query runs a read-only statement against src and materializes the result.
func Query(input string, src plan.Source) (*plan.Result, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if !st.ReadOnly() {
		return nil, fmt.Errorf("gql: statement writes; use Exec")
	}
	return runRead(st, src)
}

func runRead(st *Statement, src plan.Source) (*plan.Result, error) {
	if st.Match == nil {
		return &plan.Result{}, nil
	}
	op, err := plan.CompileFor(st.Match, src)
	if err != nil {
		return nil, err
	}
	return plan.Collect(op, src, st.Columns())
}

// Exec runs any statement, applying writes through m. The returned result
// carries RETURN output when present; write-only statements return counters
// in the "nodes", "edges", "set", "deleted" columns.
func Exec(input string, m Mutator) (*plan.Result, error) {
	return ExecCtx(context.Background(), input, m)
}

// ExecCtx is Exec with a context. When ctx carries an obs.Trace, parsing and
// execution are recorded as "parse" and "exec" spans; the answer is always
// identical to Exec's.
func ExecCtx(ctx context.Context, input string, m Mutator) (*plan.Result, error) {
	tr := obs.FromContext(ctx)
	endParse := tr.StartSpan("parse")
	st, err := Parse(input)
	endParse()
	if err != nil {
		return nil, err
	}
	defer tr.StartSpan("exec")()
	return execParsed(ctx, st, m)
}

// ExecStreamCtx is ExecCtx delivering the result into sink incrementally.
// Read statements stream rows as the operator tree produces them; write
// statements (whose result is a counter row that only exists after the last
// mutation) execute fully and replay. The rows and their order are exactly
// ExecCtx's.
func ExecStreamCtx(ctx context.Context, input string, m Mutator, sink plan.Sink) error {
	tr := obs.FromContext(ctx)
	endParse := tr.StartSpan("parse")
	st, err := Parse(input)
	endParse()
	if err != nil {
		return err
	}
	defer tr.StartSpan("exec")()
	if st.ReadOnly() {
		if st.Match == nil {
			return plan.Replay(&plan.Result{}, sink)
		}
		src := plan.WithCancel(ctx, m)
		op, err := plan.CompileFor(st.Match, src)
		if err != nil {
			return err
		}
		return plan.Stream(op, src, st.Columns(), sink)
	}
	res, err := execParsed(ctx, st, m)
	if err != nil {
		return err
	}
	return plan.Replay(res, sink)
}

func execParsed(ctx context.Context, st *Statement, m Mutator) (*plan.Result, error) {
	if st.ReadOnly() {
		return runRead(st, plan.WithCancel(ctx, m))
	}

	// Materialize binding rows first so mutation does not race iteration.
	rows := []query.Row{{}}
	if st.Match != nil {
		spec := *st.Match
		spec.Return = nil
		spec.Aggs = nil
		spec.GroupBy = nil
		op, err := plan.CompileFor(&spec, m)
		if err != nil {
			return nil, err
		}
		rows = nil
		if err := op.Run(plan.WithCancel(ctx, m), func(r query.Row) error {
			rows = append(rows, r)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	var nodesCreated, edgesCreated, propsSet, deleted int
	for _, row := range rows {
		// Writes apply row-by-row, so a deadline can stop a large mutation
		// between rows (already-applied writes stay applied, as documented
		// in the overload contract).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Creates: nodes first so edge endpoints resolve.
		for _, cn := range st.CreateNodes {
			id, err := m.AddNode(cn.Label, cn.Props)
			if err != nil {
				return nil, err
			}
			nodesCreated++
			if cn.Var != "" {
				n, err := m.Node(id)
				if err != nil {
					return nil, err
				}
				row[cn.Var] = query.NodeEntry(n)
			}
		}
		for _, ce := range st.CreateEdges {
			from, ok := row[ce.FromVar]
			if !ok || from.Kind != query.EntryNode {
				return nil, fmt.Errorf("gql: CREATE edge source %q is not a bound node", ce.FromVar)
			}
			to, ok := row[ce.ToVar]
			if !ok || to.Kind != query.EntryNode {
				return nil, fmt.Errorf("gql: CREATE edge target %q is not a bound node", ce.ToVar)
			}
			if _, err := m.AddEdge(ce.Label, from.Node.ID, to.Node.ID, ce.Props); err != nil {
				return nil, err
			}
			edgesCreated++
		}
		for _, set := range st.Sets {
			ent, ok := row[set.Var]
			if !ok {
				return nil, fmt.Errorf("gql: SET target %q is unbound", set.Var)
			}
			v, err := set.Expr.Eval(row)
			if err != nil {
				return nil, err
			}
			switch ent.Kind {
			case query.EntryNode:
				if err := m.SetNodeProp(ent.Node.ID, set.Prop, v); err != nil {
					return nil, err
				}
			case query.EntryEdge:
				if err := m.SetEdgeProp(ent.Edge.ID, set.Prop, v); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("gql: SET target %q is not an entity", set.Var)
			}
			propsSet++
		}
		for _, dv := range st.Deletes {
			ent, ok := row[dv]
			if !ok {
				return nil, fmt.Errorf("gql: DELETE target %q is unbound", dv)
			}
			switch ent.Kind {
			case query.EntryNode:
				if st.Detach {
					// Remove incident edges first.
					var eids []model.EdgeID
					if err := m.Neighbors(ent.Node.ID, model.Both, func(e model.Edge, _ model.Node) bool {
						eids = append(eids, e.ID)
						return true
					}); err != nil {
						return nil, err
					}
					for _, eid := range eids {
						if err := m.RemoveEdge(eid); err != nil && !isNotFound(err) {
							return nil, err
						}
					}
				}
				if err := m.RemoveNode(ent.Node.ID); err != nil && !isNotFound(err) {
					return nil, err
				}
			case query.EntryEdge:
				if err := m.RemoveEdge(ent.Edge.ID); err != nil && !isNotFound(err) {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("gql: DELETE target %q is not an entity", dv)
			}
			deleted++
		}
	}
	return &plan.Result{
		Cols: []string{"nodes", "edges", "set", "deleted"},
		Rows: [][]model.Value{{
			model.Int(int64(nodesCreated)),
			model.Int(int64(edgesCreated)),
			model.Int(int64(propsSet)),
			model.Int(int64(deleted)),
		}},
	}, nil
}

func isNotFound(err error) bool { return errors.Is(err, model.ErrNotFound) }
