// Package gql implements the Cypher-like property-graph query language that
// the Neo4j-archetype engine exposes (the survey records Neo4j's query
// language as partial — "Neo4j is developing Cypher"). Supported statements:
//
//	MATCH (a:Person {name: 'ada'})-[r:knows]->(b)
//	      WHERE b.age > 30
//	      RETURN DISTINCT b.name AS name, count(*) AS n
//	      ORDER BY name DESC SKIP 1 LIMIT 10
//	CREATE (n:Label {k: v, ...})
//	MATCH ... CREATE (a)-[:REL {k: v}]->(b)
//	MATCH ... SET a.prop = expr
//	MATCH ... DELETE a
//
// Patterns may chain, e.g. (a)-[:x]->(b)<-[:y]-(c), and MATCH accepts
// comma-separated patterns.
package gql

import (
	"fmt"
	"strings"

	"gdbm/internal/model"
	"gdbm/internal/query"
	"gdbm/internal/query/plan"
)

// Statement is a parsed gql statement.
type Statement struct {
	// Match is the read part; nil for a bare CREATE.
	Match *plan.MatchSpec
	// Creates are nodes/edges to create per binding row (or once if no
	// match part).
	CreateNodes []CreateNode
	CreateEdges []CreateEdge
	// Sets are property assignments per binding row.
	Sets []SetItem
	// Deletes are variables whose bound entity is removed per row.
	Deletes []string
	// Detach deletes incident edges along with nodes.
	Detach bool
}

// CreateNode describes one node to create.
type CreateNode struct {
	Var   string
	Label string
	Props model.Properties
}

// CreateEdge describes one edge to create between two bound variables.
type CreateEdge struct {
	FromVar, ToVar string
	Label          string
	Props          model.Properties
}

// SetItem is one SET assignment.
type SetItem struct {
	Var  string
	Prop string
	Expr query.Expr
}

// ReadOnly reports whether the statement has no write clauses.
func (s *Statement) ReadOnly() bool {
	return len(s.CreateNodes) == 0 && len(s.CreateEdges) == 0 && len(s.Sets) == 0 && len(s.Deletes) == 0
}

// Columns returns the output column names of the RETURN clause.
func (s *Statement) Columns() []string {
	if s.Match == nil {
		return nil
	}
	var cols []string
	for _, it := range s.Match.GroupBy {
		cols = append(cols, it.Name)
	}
	if len(s.Match.Aggs) > 0 {
		for _, a := range s.Match.Aggs {
			cols = append(cols, a.Name)
		}
		return cols
	}
	for _, it := range s.Match.Return {
		cols = append(cols, it.Name)
	}
	return cols
}

// Parse parses one gql statement.
func Parse(input string) (*Statement, error) {
	p := &parser{lex: query.NewLexer(input), vars: map[string]int{}}
	st, err := p.parseStatement()
	if err != nil {
		return nil, fmt.Errorf("gql: %w", err)
	}
	return st, nil
}

type parser struct {
	lex  *query.Lexer
	spec plan.MatchSpec
	vars map[string]int // pattern variable -> node index
}

func (p *parser) parseStatement() (*Statement, error) {
	st := &Statement{}
	p.spec.Limit = -1
	hasMatch := false
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOFKind {
			break
		}
		if t.Kind != query.TokIdent {
			return nil, p.lex.Errorf(t.Pos, "expected a clause keyword, got %q", t.Text)
		}
		switch strings.ToUpper(t.Text) {
		case "MATCH":
			p.lex.Next()
			if err := p.parsePatterns(); err != nil {
				return nil, err
			}
			hasMatch = true
		case "WHERE":
			p.lex.Next()
			e, err := query.ParseExpr(p.lex)
			if err != nil {
				return nil, err
			}
			if p.spec.Where == nil {
				p.spec.Where = e
			} else {
				p.spec.Where = query.BinOp{Op: "and", L: p.spec.Where, R: e}
			}
		case "RETURN":
			p.lex.Next()
			if err := p.parseReturn(); err != nil {
				return nil, err
			}
		case "ORDER":
			p.lex.Next()
			if err := p.lex.ExpectIdent("BY"); err != nil {
				return nil, err
			}
			if err := p.parseOrderBy(); err != nil {
				return nil, err
			}
		case "SKIP":
			p.lex.Next()
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			p.spec.Offset = n
		case "LIMIT":
			p.lex.Next()
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			p.spec.Limit = n
		case "CREATE":
			p.lex.Next()
			if err := p.parseCreate(st); err != nil {
				return nil, err
			}
		case "SET":
			p.lex.Next()
			if err := p.parseSet(st); err != nil {
				return nil, err
			}
		case "DETACH":
			p.lex.Next()
			if err := p.lex.ExpectIdent("DELETE"); err != nil {
				return nil, err
			}
			st.Detach = true
			if err := p.parseDelete(st); err != nil {
				return nil, err
			}
		case "DELETE":
			p.lex.Next()
			if err := p.parseDelete(st); err != nil {
				return nil, err
			}
		default:
			return nil, p.lex.Errorf(t.Pos, "unexpected clause %q", t.Text)
		}
	}
	if hasMatch || len(p.spec.Return) > 0 || len(p.spec.Aggs) > 0 {
		spec := p.spec
		st.Match = &spec
	}
	if st.Match == nil && len(st.CreateNodes) == 0 && len(st.CreateEdges) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	return st, nil
}

// TokEOFKind aliases the lexer EOF kind for readability.
const TokEOFKind = query.TokEOF

func (p *parser) parseInt() (int, error) {
	t, err := p.lex.Next()
	if err != nil {
		return 0, err
	}
	if t.Kind != query.TokNumber {
		return 0, p.lex.Errorf(t.Pos, "expected a number, got %q", t.Text)
	}
	n := 0
	for _, c := range t.Text {
		if c < '0' || c > '9' {
			return 0, p.lex.Errorf(t.Pos, "expected an integer, got %q", t.Text)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// parsePatterns parses comma-separated pattern chains.
func (p *parser) parsePatterns() error {
	for {
		if err := p.parsePatternChain(); err != nil {
			return err
		}
		if !p.lex.AcceptPunct(",") {
			return nil
		}
	}
}

// parsePatternChain parses (a)-[r]->(b)<-[s]-(c)...
func (p *parser) parsePatternChain() error {
	left, err := p.parseNodePattern()
	if err != nil {
		return err
	}
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return err
		}
		if t.Kind != query.TokPunct || (t.Text != "-" && t.Text != "<-") {
			return nil
		}
		// Directions: -[r]-> or <-[r]- or -[r]- (both).
		leftArrow := t.Text == "<-"
		p.lex.Next()
		var ev, elabel string
		var props model.Properties
		var vl varLength
		if p.lex.AcceptPunct("[") {
			ev, elabel, props, vl, err = p.parseEdgeBody()
			if err != nil {
				return err
			}
			if err := p.lex.ExpectPunct("]"); err != nil {
				return err
			}
		}
		_ = props // edge property patterns become WHERE filters below
		rightArrow := false
		if p.lex.AcceptPunct("->") {
			rightArrow = true
		} else if !p.lex.AcceptPunct("-") {
			return fmt.Errorf("expected '-' or '->' after edge pattern")
		}
		right, err := p.parseNodePattern()
		if err != nil {
			return err
		}
		dir := model.Both
		from, to := left, right
		switch {
		case rightArrow && !leftArrow:
			dir = model.Out
		case leftArrow && !rightArrow:
			dir = model.Out
			from, to = right, left
		}
		if vl.enabled && ev != "" {
			return fmt.Errorf("variable-length patterns cannot bind an edge variable %q", ev)
		}
		p.spec.Edges = append(p.spec.Edges, plan.EdgePat{
			Var: ev, Label: elabel, From: from, To: to, Dir: dir,
			VarLength: vl.enabled, Min: vl.min, Max: vl.max,
		})
		if ev != "" && len(props) > 0 {
			for k, v := range props {
				cond := query.BinOp{Op: "=", L: query.Var{Name: ev, Prop: k}, R: query.Lit{V: v}}
				if p.spec.Where == nil {
					p.spec.Where = cond
				} else {
					p.spec.Where = query.BinOp{Op: "and", L: p.spec.Where, R: cond}
				}
			}
		}
		left = right
	}
}

// parseNodePattern parses (var:Label {k: v, ...}); every part optional.
func (p *parser) parseNodePattern() (int, error) {
	if err := p.lex.ExpectPunct("("); err != nil {
		return 0, err
	}
	var name, label string
	t, err := p.lex.Peek()
	if err != nil {
		return 0, err
	}
	if t.Kind == query.TokIdent {
		p.lex.Next()
		name = t.Text
	}
	if p.lex.AcceptPunct(":") {
		lt, err := p.lex.Next()
		if err != nil {
			return 0, err
		}
		if lt.Kind != query.TokIdent {
			return 0, p.lex.Errorf(lt.Pos, "expected a label")
		}
		label = lt.Text
	}
	var props model.Properties
	if p.lex.AcceptPunct("{") {
		props, err = p.parsePropMap()
		if err != nil {
			return 0, err
		}
	}
	if err := p.lex.ExpectPunct(")"); err != nil {
		return 0, err
	}
	// Reuse the node index for repeated variables.
	if name != "" {
		if idx, ok := p.vars[name]; ok {
			if label != "" {
				p.spec.Nodes[idx].Label = label
			}
			for k, v := range props {
				if p.spec.Nodes[idx].Props == nil {
					p.spec.Nodes[idx].Props = model.Properties{}
				}
				p.spec.Nodes[idx].Props[k] = v
			}
			return idx, nil
		}
	}
	idx := len(p.spec.Nodes)
	p.spec.Nodes = append(p.spec.Nodes, plan.NodePat{Var: name, Label: label, Props: props})
	if name != "" {
		p.vars[name] = idx
	}
	return idx, nil
}

// varLength carries a parsed *min..max modifier.
type varLength struct {
	enabled  bool
	min, max int
}

// parseEdgeBody parses the inside of [var:LABEL*min..max {props}]. The
// variable-length modifier follows Cypher: * (1..unbounded), *n (exactly
// n), *min..max, *min.. and *..max.
func (p *parser) parseEdgeBody() (ev, label string, props model.Properties, vl varLength, err error) {
	t, err := p.lex.Peek()
	if err != nil {
		return "", "", nil, vl, err
	}
	if t.Kind == query.TokIdent {
		p.lex.Next()
		ev = t.Text
	}
	if p.lex.AcceptPunct(":") {
		lt, err := p.lex.Next()
		if err != nil {
			return "", "", nil, vl, err
		}
		if lt.Kind != query.TokIdent {
			return "", "", nil, vl, p.lex.Errorf(lt.Pos, "expected an edge label")
		}
		label = lt.Text
	}
	if p.lex.AcceptPunct("*") {
		vl.enabled = true
		vl.min, vl.max = 1, 0
		if n, ok, err := p.acceptInt(); err != nil {
			return "", "", nil, vl, err
		} else if ok {
			vl.min, vl.max = n, n
		}
		if p.lex.AcceptPunct(".") {
			if err := p.lex.ExpectPunct("."); err != nil {
				return "", "", nil, vl, err
			}
			vl.max = 0
			if n, ok, err := p.acceptInt(); err != nil {
				return "", "", nil, vl, err
			} else if ok {
				vl.max = n
			}
			if vl.min == vl.max && vl.max != 0 && vl.min != 1 {
				// *n..n is fine; nothing to adjust.
				_ = vl
			}
		} else if vl.min == vl.max && vl.max == 0 {
			// bare * stays 1..unbounded
			vl.min = 1
		}
		if vl.max != 0 && vl.max < vl.min {
			return "", "", nil, vl, fmt.Errorf("variable-length range %d..%d is empty", vl.min, vl.max)
		}
	}
	if p.lex.AcceptPunct("{") {
		props, err = p.parsePropMap()
		if err != nil {
			return "", "", nil, vl, err
		}
	}
	return ev, label, props, vl, nil
}

// acceptInt consumes an integer token if present.
func (p *parser) acceptInt() (int, bool, error) {
	t, err := p.lex.Peek()
	if err != nil {
		return 0, false, err
	}
	if t.Kind != query.TokNumber {
		return 0, false, nil
	}
	p.lex.Next()
	n := 0
	for _, c := range t.Text {
		if c < '0' || c > '9' {
			return 0, false, p.lex.Errorf(t.Pos, "expected an integer")
		}
		n = n*10 + int(c-'0')
	}
	return n, true, nil
}

// parsePropMap parses k: v, ... } — the opening brace is already consumed.
func (p *parser) parsePropMap() (model.Properties, error) {
	props := model.Properties{}
	if p.lex.AcceptPunct("}") {
		return props, nil
	}
	for {
		kt, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		if kt.Kind != query.TokIdent {
			return nil, p.lex.Errorf(kt.Pos, "expected a property name")
		}
		if err := p.lex.ExpectPunct(":"); err != nil {
			return nil, err
		}
		e, err := query.ParseExpr(p.lex)
		if err != nil {
			return nil, err
		}
		v, err := e.Eval(query.Row{})
		if err != nil {
			return nil, fmt.Errorf("property %q must be a constant: %w", kt.Text, err)
		}
		props[kt.Text] = v
		if p.lex.AcceptPunct(",") {
			continue
		}
		if err := p.lex.ExpectPunct("}"); err != nil {
			return nil, err
		}
		return props, nil
	}
}

func (p *parser) parseReturn() error {
	p.spec.Distinct = p.lex.AcceptIdent("DISTINCT")
	for {
		e, err := query.ParseExpr(p.lex)
		if err != nil {
			return err
		}
		name := e.String()
		if p.lex.AcceptIdent("AS") {
			at, err := p.lex.Next()
			if err != nil {
				return err
			}
			if at.Kind != query.TokIdent {
				return p.lex.Errorf(at.Pos, "expected an alias")
			}
			name = at.Text
		}
		if call, ok := e.(query.Call); ok && query.AggFuncs[strings.ToLower(call.Fn)] {
			var arg query.Expr
			if len(call.Args) == 1 {
				if lit, isLit := call.Args[0].(query.Lit); !isLit || lit.V.String() != "*" {
					arg = call.Args[0]
				}
			}
			p.spec.Aggs = append(p.spec.Aggs, plan.AggItem{Name: name, Fn: call.Fn, Arg: arg})
		} else {
			p.spec.Return = append(p.spec.Return, plan.Item{Name: name, Expr: e})
		}
		if !p.lex.AcceptPunct(",") {
			break
		}
	}
	if len(p.spec.Aggs) > 0 {
		p.spec.GroupBy = p.spec.Return
		p.spec.Return = nil
	}
	return nil
}

func (p *parser) parseOrderBy() error {
	for {
		e, err := query.ParseExpr(p.lex)
		if err != nil {
			return err
		}
		desc := false
		if p.lex.AcceptIdent("DESC") {
			desc = true
		} else {
			p.lex.AcceptIdent("ASC")
		}
		p.spec.OrderBy = append(p.spec.OrderBy, plan.OrderKey{Expr: e, Desc: desc})
		if !p.lex.AcceptPunct(",") {
			return nil
		}
	}
}

func (p *parser) parseCreate(st *Statement) error {
	for {
		if err := p.parseCreateElement(st); err != nil {
			return err
		}
		if !p.lex.AcceptPunct(",") {
			return nil
		}
	}
}

// parseCreateElement parses (n:L {..}) or (a)-[:R {..}]->(b).
func (p *parser) parseCreateElement(st *Statement) error {
	if err := p.lex.ExpectPunct("("); err != nil {
		return err
	}
	var name, label string
	t, err := p.lex.Peek()
	if err != nil {
		return err
	}
	if t.Kind == query.TokIdent {
		p.lex.Next()
		name = t.Text
	}
	if p.lex.AcceptPunct(":") {
		lt, err := p.lex.Next()
		if err != nil {
			return err
		}
		label = lt.Text
	}
	var props model.Properties
	if p.lex.AcceptPunct("{") {
		props, err = p.parsePropMap()
		if err != nil {
			return err
		}
	}
	if err := p.lex.ExpectPunct(")"); err != nil {
		return err
	}
	// Edge creation?
	if p.lex.AcceptPunct("-") {
		if err := p.lex.ExpectPunct("["); err != nil {
			return err
		}
		_, elabel, eprops, vl, err := p.parseEdgeBody()
		if err != nil {
			return err
		}
		if vl.enabled {
			return fmt.Errorf("CREATE cannot use variable-length patterns")
		}
		if err := p.lex.ExpectPunct("]"); err != nil {
			return err
		}
		if err := p.lex.ExpectPunct("->"); err != nil {
			return err
		}
		if err := p.lex.ExpectPunct("("); err != nil {
			return err
		}
		tt, err := p.lex.Next()
		if err != nil {
			return err
		}
		if tt.Kind != query.TokIdent {
			return p.lex.Errorf(tt.Pos, "CREATE edge target must be a bound variable")
		}
		if err := p.lex.ExpectPunct(")"); err != nil {
			return err
		}
		if elabel == "" {
			return fmt.Errorf("CREATE edge requires a label")
		}
		st.CreateEdges = append(st.CreateEdges, CreateEdge{
			FromVar: name, ToVar: tt.Text, Label: elabel, Props: eprops,
		})
		return nil
	}
	if label == "" && len(props) == 0 && name != "" {
		// (a) alone in CREATE context: likely the head of an edge — but we
		// got here only if no '-' followed, so treat as a bare node.
		st.CreateNodes = append(st.CreateNodes, CreateNode{Var: name})
		return nil
	}
	st.CreateNodes = append(st.CreateNodes, CreateNode{Var: name, Label: label, Props: props})
	return nil
}

func (p *parser) parseSet(st *Statement) error {
	for {
		vt, err := p.lex.Next()
		if err != nil {
			return err
		}
		if vt.Kind != query.TokIdent {
			return p.lex.Errorf(vt.Pos, "SET expects var.prop")
		}
		if err := p.lex.ExpectPunct("."); err != nil {
			return err
		}
		pt, err := p.lex.Next()
		if err != nil {
			return err
		}
		if err := p.lex.ExpectPunct("="); err != nil {
			return err
		}
		e, err := query.ParseExpr(p.lex)
		if err != nil {
			return err
		}
		st.Sets = append(st.Sets, SetItem{Var: vt.Text, Prop: pt.Text, Expr: e})
		if !p.lex.AcceptPunct(",") {
			return nil
		}
	}
}

func (p *parser) parseDelete(st *Statement) error {
	for {
		vt, err := p.lex.Next()
		if err != nil {
			return err
		}
		if vt.Kind != query.TokIdent {
			return p.lex.Errorf(vt.Pos, "DELETE expects variables")
		}
		st.Deletes = append(st.Deletes, vt.Text)
		if !p.lex.AcceptPunct(",") {
			return nil
		}
	}
}
