package gql

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// testDB wraps memgraph as a Mutator with no indexes.
type testDB struct{ *memgraph.Graph }

func (testDB) IndexedNodes(string, string, model.Value, func(model.Node) bool) (bool, error) {
	return false, nil
}

func newDB(t *testing.T) testDB {
	t.Helper()
	return testDB{memgraph.New()}
}

func seed(t *testing.T, db testDB) {
	t.Helper()
	stmts := []string{
		`CREATE (a:Person {name: 'ada', age: 36})`,
		`CREATE (b:Person {name: 'bob', age: 40})`,
		`CREATE (c:Person {name: 'cam', age: 25})`,
		`CREATE (z:City {name: 'zurich'})`,
	}
	for _, s := range stmts {
		if _, err := Exec(s, db); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	edges := []string{
		`MATCH (a:Person {name: 'ada'}), (b:Person {name: 'bob'}) CREATE (a)-[:knows {since: 2019}]->(b)`,
		`MATCH (b:Person {name: 'bob'}), (c:Person {name: 'cam'}) CREATE (b)-[:knows]->(c)`,
		`MATCH (a:Person {name: 'ada'}), (z:City) CREATE (a)-[:livesIn]->(z)`,
		`MATCH (c:Person {name: 'cam'}), (z:City) CREATE (c)-[:livesIn]->(z)`,
	}
	for _, s := range edges {
		if _, err := Exec(s, db); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestCreateAndCount(t *testing.T) {
	db := newDB(t)
	res, err := Exec(`CREATE (a:Person {name: 'ada'})`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(1)) {
		t.Errorf("nodes created = %v", res.Rows[0][0])
	}
	if db.Order() != 1 {
		t.Errorf("order = %d", db.Order())
	}
}

func TestMatchReturn(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS name ORDER BY name`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0][0].AsString(); n != "ada" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if n, _ := res.Rows[1][0].AsString(); n != "bob" {
		t.Errorf("row1 = %v", res.Rows[1])
	}
}

func TestMatchEdgePattern(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (a:Person)-[r:knows]->(b:Person) RETURN a.name AS a, b.name AS b, r.since AS since`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestMatchChainAndReversedArrow(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	// Chain: who lives where ada's friends-of-friends live? cam lives in zurich.
	res, err := Query(`MATCH (a:Person {name: 'ada'})-[:knows]->(b)-[:knows]->(c)-[:livesIn]->(z) RETURN c.name AS c, z.name AS z`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Reversed arrow.
	res2, err := Query(`MATCH (b)<-[:knows]-(a:Person {name: 'ada'}) RETURN b.name AS b`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("reversed rows = %v", res2.Rows)
	}
	if n, _ := res2.Rows[0][0].AsString(); n != "bob" {
		t.Errorf("b = %q", n)
	}
}

func TestUndirectedEdge(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (a:Person {name: 'bob'})-[:knows]-(x) RETURN x.name AS x ORDER BY x`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("undirected rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (p:Person) RETURN count(*) AS n, avg(p.age) AS avgAge, max(p.age) AS maxAge`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Rows[0][0].Equal(model.Int(3)) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if !res.Rows[0][2].Equal(model.Int(40)) {
		t.Errorf("max = %v", res.Rows[0][2])
	}
}

func TestGroupedAggregate(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	// Group persons by whether they live somewhere: count livesIn per city.
	res, err := Query(`MATCH (p:Person)-[:livesIn]->(c) RETURN c.name AS city, count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[0][1].Equal(model.Int(2)) {
		t.Errorf("n = %v", res.Rows[0][1])
	}
}

func TestDistinctSkipLimit(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (p:Person)-[:livesIn]->(c) RETURN DISTINCT c.name AS city`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
	res2, err := Query(`MATCH (p:Person) RETURN p.name AS n ORDER BY n SKIP 1 LIMIT 1`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("rows = %v", res2.Rows)
	}
	if n, _ := res2.Rows[0][0].AsString(); n != "bob" {
		t.Errorf("skipped row = %q", n)
	}
}

func TestSet(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	if _, err := Exec(`MATCH (p:Person {name: 'ada'}) SET p.age = p.age + 1`, db); err != nil {
		t.Fatal(err)
	}
	res, _ := Query(`MATCH (p:Person {name: 'ada'}) RETURN p.age AS age`, db)
	if !res.Rows[0][0].Equal(model.Int(37)) {
		t.Errorf("age = %v", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	// Plain DELETE on a connected node cascades in memgraph (engines with
	// referential constraints veto it; that is tested in the engine suites).
	if _, err := Exec(`MATCH (p:Person {name: 'cam'}) DETACH DELETE p`, db); err != nil {
		t.Fatal(err)
	}
	res, _ := Query(`MATCH (p:Person) RETURN count(*) AS n`, db)
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("count after delete = %v", res.Rows[0][0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		``,
		`MATCH`,
		`MATCH (a RETURN a`,
		`MATCH (a) RETURN`,
		`FOO (a)`,
		`MATCH (a)-[>(b) RETURN a`,
		`CREATE (a)-[]->(b)`, // edge without label
		`MATCH (a) LIMIT x`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}

func TestQueryRejectsWrites(t *testing.T) {
	db := newDB(t)
	if _, err := Query(`CREATE (a:X)`, db); err == nil {
		t.Error("Query should reject writes")
	}
}

func TestExecErrors(t *testing.T) {
	db := newDB(t)
	// CREATE edge with unbound endpoint.
	if _, err := Exec(`CREATE (a)-[:r]->(b)`, db); err == nil {
		t.Error("unbound endpoints should fail")
	}
	// SET on unbound var.
	seed(t, db)
	if _, err := Exec(`MATCH (p:Person {name:'ada'}) SET q.x = 1`, db); err == nil {
		t.Error("unbound SET target should fail")
	}
}

func TestEdgePropertyFilterInPattern(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	res, err := Query(`MATCH (a)-[r:knows {since: 2019}]->(b) RETURN b.name AS b`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "bob" {
		t.Errorf("b = %q", n)
	}
}

func TestRepeatedVariableUnifies(t *testing.T) {
	db := newDB(t)
	seed(t, db)
	// (a)-[:livesIn]->(z), (c)-[:livesIn]->(z) with shared z: pairs living
	// in the same city: (ada,cam) and (cam,ada) and self-pairs.
	res, err := Query(`MATCH (a:Person)-[:livesIn]->(z), (c:Person)-[:livesIn]->(z) WHERE a.name <> c.name RETURN a.name AS a, c.name AS c`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("shared-city pairs = %v", res.Rows)
	}
}

var _ plan.Source = testDB{}
var _ Mutator = testDB{}
