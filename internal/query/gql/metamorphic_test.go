package gql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdbm/internal/index"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// indexedDB wraps memgraph with a label + property index, exercising the
// planner's index path.
type indexedDB struct {
	*memgraph.Graph
	idx *index.Manager
}

func (d indexedDB) IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (bool, error) {
	var ix index.Index
	var key model.Value
	if prop != "" {
		i, ok := d.idx.Get(index.Nodes, prop)
		if !ok {
			return false, nil
		}
		ix, key = i, v
	} else {
		i, ok := d.idx.Get(index.Nodes, "")
		if !ok || label == "" {
			return false, nil
		}
		ix, key = i, model.Str(label)
	}
	err := ix.Lookup(key, func(id uint64) bool {
		n, err := d.Graph.Node(model.NodeID(id))
		if err != nil {
			return true
		}
		if label != "" && n.Label != label {
			return true
		}
		return fn(n)
	})
	return true, err
}

// Metamorphic property: the same query over the same data returns the same
// multiset of rows whether the planner scans or uses indexes.
func TestIndexedAndScannedResultsAgree(t *testing.T) {
	plainG := memgraph.New()
	idxG := memgraph.New()
	mgr := index.NewManager()
	mgr.Create(index.Nodes, "", index.KindHash)
	mgr.Create(index.Nodes, "group", index.KindBitmap)

	// Same deterministic data into both.
	seed := func(g *memgraph.Graph, withIdx bool) {
		var ids []model.NodeID
		for i := 0; i < 60; i++ {
			label := []string{"A", "B", "C"}[i%3]
			props := model.Props("group", i%5, "rank", i)
			id, _ := g.AddNode(label, props)
			ids = append(ids, id)
			if withIdx {
				mgr.OnNodeWrite(model.Node{ID: id, Label: label, Props: props}, "", nil)
			}
		}
		for i := 0; i < 60; i++ {
			g.AddEdge("next", ids[i], ids[(i+1)%60], nil)
			if i%4 == 0 {
				g.AddEdge("jump", ids[i], ids[(i+13)%60], nil)
			}
		}
	}
	seed(plainG, false)
	seed(idxG, true)

	plain := testDB{plainG}
	indexed := indexedDB{Graph: idxG, idx: mgr}

	queries := []string{
		`MATCH (a:A) RETURN a.rank AS r`,
		`MATCH (a:A {group: 2}) RETURN a.rank AS r`,
		`MATCH (a:B)-[:next]->(b) RETURN a.rank AS r, b.rank AS s`,
		`MATCH (a {group: 0})-[:jump]->(b)-[:next]->(c) RETURN c.rank AS r`,
		`MATCH (a:C) WHERE a.rank > 30 RETURN count(*) AS n`,
		`MATCH (a:A)-[:next]->(b:B) RETURN a.rank + b.rank AS s ORDER BY s LIMIT 5`,
	}
	for _, q := range queries {
		t.Run(q, func(t *testing.T) {
			r1, err := Query(q, plain)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Query(q, indexed)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := canon(r2), canon(r1); got != want {
				t.Errorf("results differ:\nscan:  %s\nindex: %s", want, got)
			}
		})
	}
}

// canon renders a result as a sorted multiset string.
func canon(r *plan.Result) string {
	var rows []string
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, ","))
	}
	sort.Strings(rows)
	return fmt.Sprintf("%v|%s", r.Cols, strings.Join(rows, ";"))
}
