package gql

import (
	"testing"

	"gdbm/internal/model"
)

// chainDB builds n0 -next-> n1 -next-> ... -next-> n5 plus a side branch.
func chainDB(t *testing.T) testDB {
	t.Helper()
	db := newDB(t)
	var ids []model.NodeID
	for i := 0; i < 6; i++ {
		id, _ := db.AddNode("N", model.Props("i", i))
		ids = append(ids, id)
	}
	for i := 0; i+1 < 6; i++ {
		db.AddEdge("next", ids[i], ids[i+1], nil)
	}
	side, _ := db.AddNode("Side", model.Props("i", 99))
	db.AddEdge("branch", ids[2], side, nil)
	return db
}

func TestVarLengthUnbounded(t *testing.T) {
	db := chainDB(t)
	res, err := Query(`MATCH (a:N {i: 0})-[:next*]->(b) RETURN b.i AS i ORDER BY i`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if v, _ := res.Rows[0][0].AsInt(); v != 1 {
		t.Errorf("first = %v", res.Rows[0][0])
	}
	if v, _ := res.Rows[4][0].AsInt(); v != 5 {
		t.Errorf("last = %v", res.Rows[4][0])
	}
}

func TestVarLengthBounded(t *testing.T) {
	db := chainDB(t)
	res, err := Query(`MATCH (a:N {i: 0})-[:next*2..3]->(b) RETURN b.i AS i ORDER BY i`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	v0, _ := res.Rows[0][0].AsInt()
	v1, _ := res.Rows[1][0].AsInt()
	if v0 != 2 || v1 != 3 {
		t.Errorf("reachable at 2..3 hops = %d, %d", v0, v1)
	}
}

func TestVarLengthExactAndOpenRanges(t *testing.T) {
	db := chainDB(t)
	res, err := Query(`MATCH (a:N {i: 0})-[:next*3]->(b) RETURN b.i AS i`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(model.Int(3)) {
		t.Fatalf("*3 rows = %v", res.Rows)
	}
	res, err = Query(`MATCH (a:N {i: 0})-[:next*..2]->(b) RETURN count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("*..2 count = %v", res.Rows[0][0])
	}
	res, err = Query(`MATCH (a:N {i: 0})-[:next*4..]->(b) RETURN count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("*4.. count = %v", res.Rows[0][0])
	}
}

func TestVarLengthZeroMinIncludesStart(t *testing.T) {
	db := chainDB(t)
	res, err := Query(`MATCH (a:N {i: 0})-[:next*0..1]->(b) RETURN b.i AS i ORDER BY i`, db)
	if err != nil {
		t.Fatal(err)
	}
	// b ∈ {a itself (0 hops), n1}.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[0][0].Equal(model.Int(0)) {
		t.Errorf("zero-hop binding = %v", res.Rows[0][0])
	}
}

func TestVarLengthReverseAndJoin(t *testing.T) {
	db := chainDB(t)
	// Reverse: who reaches n4 in 1..2 next-hops?
	res, err := Query(`MATCH (b:N {i: 4})<-[:next*1..2]-(a) RETURN a.i AS i ORDER BY i`, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("reverse rows = %v", res.Rows)
	}
	// Bound-bound connectivity check.
	res, err = Query(`MATCH (a:N {i: 0}), (b:N {i: 5}) MATCH (a)-[:next*]->(b) RETURN count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(1)) {
		t.Errorf("connectivity count = %v", res.Rows[0][0])
	}
}

func TestVarLengthLabelRespected(t *testing.T) {
	db := chainDB(t)
	// branch label is not next: side node unreachable through next*.
	res, err := Query(`MATCH (a:N {i: 0})-[:next*]->(b:Side) RETURN count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(0)) {
		t.Errorf("label filter failed: %v", res.Rows[0][0])
	}
	// Any-label variable length reaches it.
	res, err = Query(`MATCH (a:N {i: 0})-[*]->(b:Side) RETURN count(*) AS n`, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(1)) {
		t.Errorf("any-label varlength: %v", res.Rows[0][0])
	}
}

func TestVarLengthParseErrors(t *testing.T) {
	for _, bad := range []string{
		`MATCH (a)-[r:next*]->(b) RETURN b`,    // edge var on varlength
		`MATCH (a)-[:next*3..2]->(b) RETURN b`, // empty range
		`CREATE (a)-[:r*]->(b)`,                // varlength in CREATE
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}
