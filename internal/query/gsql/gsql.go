// Package gsql implements the SQL-based query language with special graph
// instructions that the survey attributes to G-Store and Sones. It covers
// all three database languages of Table II:
//
// Data Definition Language:
//
//	CREATE VERTEX TYPE Person (name STRING REQUIRED UNIQUE, age INT)
//	CREATE EDGE TYPE knows FROM Person TO Person
//	DROP VERTEX TYPE Person
//	DROP EDGE TYPE knows
//
// Data Manipulation Language:
//
//	INSERT VERTEX Person (name = 'ada', age = 36)
//	INSERT EDGE knows FROM 1 TO 2 (since = 2019)
//	UPDATE VERTEX 3 SET age = 37
//	DELETE VERTEX 3
//	DELETE EDGE 7
//
// Query Language, including the graph-specific instructions:
//
//	SELECT name, age FROM Person WHERE age > 30 ORDER BY age DESC LIMIT 5
//	SELECT PATH FROM 1 TO 9                 -- shortest path
//	SELECT PATH FROM 1 TO 9 MAXLEN 4        -- fixed-length paths
//	SELECT NEIGHBORS OF 1 DEPTH 2           -- k-neighborhood
//	SELECT REACH FROM 1 TO 9                -- reachability test
package gsql

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"gdbm/internal/algo"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query"
	"gdbm/internal/query/plan"
)

// Engine is the surface gsql executes against: graph reads and writes plus a
// schema for the DDL.
type Engine interface {
	plan.Source
	Schema() *model.Schema
	AddNode(label string, props model.Properties) (model.NodeID, error)
	AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error)
	RemoveNode(id model.NodeID) error
	RemoveEdge(id model.EdgeID) error
	SetNodeProp(id model.NodeID, key string, v model.Value) error
}

// Result mirrors plan.Result.
type Result = plan.Result

// Exec parses and runs one gsql statement.
func Exec(input string, e Engine) (*Result, error) {
	return ExecCtx(context.Background(), input, e)
}

// ExecCtx is Exec with a context. gsql parses and executes in one
// interleaved pass, so a trace carried by ctx records the whole statement as
// a single "exec" span; the answer is always identical to Exec's.
func ExecCtx(ctx context.Context, input string, e Engine) (*Result, error) {
	defer obs.FromContext(ctx).StartSpan("exec")()
	l := query.NewLexer(input)
	t, err := l.Peek()
	if err != nil {
		return nil, err
	}
	if t.Kind != query.TokIdent {
		return nil, fmt.Errorf("gsql: expected a statement keyword")
	}
	switch strings.ToUpper(t.Text) {
	case "CREATE":
		return execCreate(l, e)
	case "DROP":
		return execDrop(l, e)
	case "INSERT":
		return execInsert(l, e)
	case "UPDATE":
		return execUpdate(l, e)
	case "DELETE":
		return execDelete(l, e)
	case "SELECT":
		return execSelect(ctx, l, e)
	}
	return nil, fmt.Errorf("gsql: unknown statement %q", t.Text)
}

// ExecStreamCtx is ExecCtx delivering the result into sink incrementally.
// The tabular SELECT form streams rows as the plan produces them; graph
// instructions and DML/DDL (whose single result row exists whole) execute
// fully and replay. The rows and their order are exactly ExecCtx's.
func ExecStreamCtx(ctx context.Context, input string, e Engine, sink plan.Sink) error {
	defer obs.FromContext(ctx).StartSpan("exec")()
	l := query.NewLexer(input)
	t, err := l.Peek()
	if err != nil {
		return err
	}
	if t.Kind != query.TokIdent {
		return fmt.Errorf("gsql: expected a statement keyword")
	}
	var res *Result
	switch strings.ToUpper(t.Text) {
	case "CREATE":
		res, err = execCreate(l, e)
	case "DROP":
		res, err = execDrop(l, e)
	case "INSERT":
		res, err = execInsert(l, e)
	case "UPDATE":
		res, err = execUpdate(l, e)
	case "DELETE":
		res, err = execDelete(l, e)
	case "SELECT":
		res, err = execSelectSink(ctx, l, e, sink)
		if err == nil && res == nil {
			return nil // the tabular path already streamed into sink
		}
	default:
		return fmt.Errorf("gsql: unknown statement %q", t.Text)
	}
	if err != nil {
		return err
	}
	return plan.Replay(res, sink)
}

func one(cols []string, vals ...model.Value) *Result {
	return &Result{Cols: cols, Rows: [][]model.Value{vals}}
}

func kindOf(name string) (model.Kind, error) {
	switch strings.ToUpper(name) {
	case "STRING", "TEXT":
		return model.KindString, nil
	case "INT", "INTEGER":
		return model.KindInt, nil
	case "FLOAT", "DOUBLE":
		return model.KindFloat, nil
	case "BOOL", "BOOLEAN":
		return model.KindBool, nil
	}
	return 0, fmt.Errorf("gsql: unknown type %q", name)
}

// --- DDL ---

func execCreate(l *query.Lexer, e Engine) (*Result, error) {
	l.Next() // CREATE
	switch {
	case l.AcceptIdent("VERTEX"):
		if err := l.ExpectIdent("TYPE"); err != nil {
			return nil, err
		}
		nt, err := l.Next()
		if err != nil {
			return nil, err
		}
		t := model.NodeType{Name: nt.Text}
		if l.AcceptPunct("(") {
			props, err := parsePropDecls(l)
			if err != nil {
				return nil, err
			}
			t.Properties = props
		}
		if err := e.Schema().DefineNodeType(t); err != nil {
			return nil, err
		}
		return one([]string{"ok"}, model.Str("vertex type "+t.Name)), nil
	case l.AcceptIdent("EDGE"):
		if err := l.ExpectIdent("TYPE"); err != nil {
			return nil, err
		}
		nt, err := l.Next()
		if err != nil {
			return nil, err
		}
		t := model.RelationType{Name: nt.Text}
		if l.AcceptIdent("FROM") {
			ft, err := l.Next()
			if err != nil {
				return nil, err
			}
			t.From = ft.Text
			if err := l.ExpectIdent("TO"); err != nil {
				return nil, err
			}
			tt, err := l.Next()
			if err != nil {
				return nil, err
			}
			t.To = tt.Text
		}
		if l.AcceptPunct("(") {
			props, err := parsePropDecls(l)
			if err != nil {
				return nil, err
			}
			t.Properties = props
		}
		if err := e.Schema().DefineRelationType(t); err != nil {
			return nil, err
		}
		return one([]string{"ok"}, model.Str("edge type "+t.Name)), nil
	}
	return nil, fmt.Errorf("gsql: CREATE expects VERTEX TYPE or EDGE TYPE")
}

func parsePropDecls(l *query.Lexer) ([]model.PropertyType, error) {
	var out []model.PropertyType
	for {
		nt, err := l.Next()
		if err != nil {
			return nil, err
		}
		if nt.Kind != query.TokIdent {
			return nil, fmt.Errorf("gsql: expected a property name, got %q", nt.Text)
		}
		kt, err := l.Next()
		if err != nil {
			return nil, err
		}
		kind, err := kindOf(kt.Text)
		if err != nil {
			return nil, err
		}
		pt := model.PropertyType{Name: nt.Text, Kind: kind}
		for {
			if l.AcceptIdent("REQUIRED") {
				pt.Required = true
				continue
			}
			if l.AcceptIdent("UNIQUE") {
				pt.Unique = true
				continue
			}
			break
		}
		out = append(out, pt)
		if l.AcceptPunct(",") {
			continue
		}
		if err := l.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func execDrop(l *query.Lexer, e Engine) (*Result, error) {
	l.Next() // DROP
	isVertex := l.AcceptIdent("VERTEX")
	if !isVertex {
		if !l.AcceptIdent("EDGE") {
			return nil, fmt.Errorf("gsql: DROP expects VERTEX TYPE or EDGE TYPE")
		}
	}
	if err := l.ExpectIdent("TYPE"); err != nil {
		return nil, err
	}
	nt, err := l.Next()
	if err != nil {
		return nil, err
	}
	if isVertex {
		err = e.Schema().DropNodeType(nt.Text)
	} else {
		err = e.Schema().DropRelationType(nt.Text)
	}
	if err != nil {
		return nil, err
	}
	return one([]string{"ok"}, model.Str("dropped "+nt.Text)), nil
}

// --- DML ---

func parseAssignments(l *query.Lexer) (model.Properties, error) {
	props := model.Properties{}
	if l.AcceptPunct(")") {
		return props, nil
	}
	for {
		nt, err := l.Next()
		if err != nil {
			return nil, err
		}
		if err := l.ExpectPunct("="); err != nil {
			return nil, err
		}
		ex, err := query.ParseExpr(l)
		if err != nil {
			return nil, err
		}
		v, err := ex.Eval(query.Row{})
		if err != nil {
			return nil, fmt.Errorf("gsql: %q must be a constant: %w", nt.Text, err)
		}
		props[nt.Text] = v
		if l.AcceptPunct(",") {
			continue
		}
		if err := l.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return props, nil
	}
}

func execInsert(l *query.Lexer, e Engine) (*Result, error) {
	l.Next() // INSERT
	switch {
	case l.AcceptIdent("VERTEX"):
		lt, err := l.Next()
		if err != nil {
			return nil, err
		}
		var props model.Properties
		if l.AcceptPunct("(") {
			props, err = parseAssignments(l)
			if err != nil {
				return nil, err
			}
		}
		id, err := e.AddNode(lt.Text, props)
		if err != nil {
			return nil, err
		}
		return one([]string{"id"}, model.Int(int64(id))), nil
	case l.AcceptIdent("EDGE"):
		lt, err := l.Next()
		if err != nil {
			return nil, err
		}
		if err := l.ExpectIdent("FROM"); err != nil {
			return nil, err
		}
		from, err := parseID(l)
		if err != nil {
			return nil, err
		}
		if err := l.ExpectIdent("TO"); err != nil {
			return nil, err
		}
		to, err := parseID(l)
		if err != nil {
			return nil, err
		}
		var props model.Properties
		if l.AcceptPunct("(") {
			props, err = parseAssignments(l)
			if err != nil {
				return nil, err
			}
		}
		id, err := e.AddEdge(lt.Text, model.NodeID(from), model.NodeID(to), props)
		if err != nil {
			return nil, err
		}
		return one([]string{"id"}, model.Int(int64(id))), nil
	}
	return nil, fmt.Errorf("gsql: INSERT expects VERTEX or EDGE")
}

func parseID(l *query.Lexer) (uint64, error) {
	t, err := l.Next()
	if err != nil {
		return 0, err
	}
	if t.Kind != query.TokNumber {
		return 0, fmt.Errorf("gsql: expected an id, got %q", t.Text)
	}
	return strconv.ParseUint(t.Text, 10, 64)
}

func execUpdate(l *query.Lexer, e Engine) (*Result, error) {
	l.Next() // UPDATE
	if !l.AcceptIdent("VERTEX") {
		return nil, fmt.Errorf("gsql: UPDATE expects VERTEX")
	}
	id, err := parseID(l)
	if err != nil {
		return nil, err
	}
	if err := l.ExpectIdent("SET"); err != nil {
		return nil, err
	}
	n := 0
	for {
		nt, err := l.Next()
		if err != nil {
			return nil, err
		}
		if err := l.ExpectPunct("="); err != nil {
			return nil, err
		}
		ex, err := query.ParseExpr(l)
		if err != nil {
			return nil, err
		}
		v, err := ex.Eval(query.Row{})
		if err != nil {
			return nil, err
		}
		if err := e.SetNodeProp(model.NodeID(id), nt.Text, v); err != nil {
			return nil, err
		}
		n++
		if !l.AcceptPunct(",") {
			break
		}
	}
	return one([]string{"set"}, model.Int(int64(n))), nil
}

func execDelete(l *query.Lexer, e Engine) (*Result, error) {
	l.Next() // DELETE
	switch {
	case l.AcceptIdent("VERTEX"):
		id, err := parseID(l)
		if err != nil {
			return nil, err
		}
		if err := e.RemoveNode(model.NodeID(id)); err != nil {
			return nil, err
		}
		return one([]string{"deleted"}, model.Int(1)), nil
	case l.AcceptIdent("EDGE"):
		id, err := parseID(l)
		if err != nil {
			return nil, err
		}
		if err := e.RemoveEdge(model.EdgeID(id)); err != nil {
			return nil, err
		}
		return one([]string{"deleted"}, model.Int(1)), nil
	}
	return nil, fmt.Errorf("gsql: DELETE expects VERTEX or EDGE")
}

// --- queries ---

func execSelect(ctx context.Context, l *query.Lexer, e Engine) (*Result, error) {
	return execSelectSink(ctx, l, e, nil)
}

// execSelectSink is execSelect with an optional streaming sink. With a nil
// sink the tabular path materializes through plan.Collect as before. With a
// sink, the tabular path streams rows through plan.Stream and returns a nil
// Result; the non-tabular instruction forms (ORDER, SIZE, PATH, ...) whose
// single row exists whole either way still return a materialized Result for
// the caller to replay.
func execSelectSink(ctx context.Context, l *query.Lexer, e Engine, sink plan.Sink) (*Result, error) {
	l.Next() // SELECT
	// Graph instructions run the algo kernels with the request context, so a
	// deadline interrupts the traversal rather than the response alone.
	if l.AcceptIdent("PATH") {
		return execSelectPath(ctx, l, e)
	}
	if l.AcceptIdent("NEIGHBORS") {
		return execSelectNeighbors(ctx, l, e)
	}
	if l.AcceptIdent("REACH") {
		return execSelectReach(ctx, l, e)
	}
	if l.AcceptIdent("ORDER") {
		// SELECT ORDER — the number of vertices (a summarization function
		// of Section IV.4).
		return one([]string{"order"}, model.Int(int64(e.Order()))), nil
	}
	if l.AcceptIdent("SIZE") {
		return one([]string{"size"}, model.Int(int64(e.Size()))), nil
	}
	if l.AcceptIdent("DEGREE") {
		return execSelectDegree(l, e)
	}
	if l.AcceptIdent("DIAMETER") {
		d, err := algo.DiameterCtx(ctx, e, model.Both)
		if err != nil {
			return nil, err
		}
		return one([]string{"diameter"}, model.Int(int64(d))), nil
	}
	if l.AcceptIdent("DISTANCE") {
		return execSelectDistance(ctx, l, e)
	}
	// Tabular SELECT over one vertex type.
	spec := plan.MatchSpec{Limit: -1}
	var cols []string
	distinct := l.AcceptIdent("DISTINCT")
	spec.Distinct = distinct
	star := false
	type retItem struct {
		name string
		expr query.Expr
		agg  string
	}
	var items []retItem
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == query.TokPunct && t.Text == "*" {
			l.Next()
			star = true
		} else {
			ex, err := query.ParseExpr(l)
			if err != nil {
				return nil, err
			}
			name := ex.String()
			if l.AcceptIdent("AS") {
				at, err := l.Next()
				if err != nil {
					return nil, err
				}
				name = at.Text
			}
			if call, ok := ex.(query.Call); ok && query.AggFuncs[strings.ToLower(call.Fn)] {
				var arg query.Expr
				if len(call.Args) == 1 {
					if lit, isLit := call.Args[0].(query.Lit); !isLit || lit.V.String() != "*" {
						arg = rewriteBareToRow(call.Args[0])
					}
				}
				spec.Aggs = append(spec.Aggs, plan.AggItem{Name: name, Fn: call.Fn, Arg: arg})
				cols = append(cols, name)
				items = append(items, retItem{name: name, agg: call.Fn})
			} else {
				ex = rewriteBareToRow(ex)
				spec.Return = append(spec.Return, plan.Item{Name: name, Expr: ex})
				cols = append(cols, name)
				items = append(items, retItem{name: name, expr: ex})
			}
		}
		if !l.AcceptPunct(",") {
			break
		}
	}
	if err := l.ExpectIdent("FROM"); err != nil {
		return nil, err
	}
	lt, err := l.Next()
	if err != nil {
		return nil, err
	}
	if lt.Kind != query.TokIdent {
		return nil, fmt.Errorf("gsql: FROM expects a vertex type name")
	}
	label := lt.Text
	if label == "_any" {
		label = ""
	}
	spec.Nodes = []plan.NodePat{{Var: "row", Label: label}}
	if star {
		// Expand * into the declared schema columns for the type.
		nt, ok := e.Schema().NodeType(label)
		if !ok {
			return nil, fmt.Errorf("gsql: SELECT * requires a declared vertex type, %q is unknown", label)
		}
		for _, p := range nt.Properties {
			spec.Return = append(spec.Return, plan.Item{
				Name: p.Name, Expr: query.Var{Name: "row", Prop: p.Name},
			})
			cols = append(cols, p.Name)
		}
	}
	if l.AcceptIdent("WHERE") {
		ex, err := query.ParseExpr(l)
		if err != nil {
			return nil, err
		}
		spec.Where = rewriteBareToRow(ex)
	}
	if l.AcceptIdent("GROUP") {
		if err := l.ExpectIdent("BY"); err != nil {
			return nil, err
		}
		for {
			gt, err := l.Next()
			if err != nil {
				return nil, err
			}
			spec.GroupBy = append(spec.GroupBy, plan.Item{
				Name: gt.Text, Expr: query.Var{Name: "row", Prop: gt.Text},
			})
			if !l.AcceptPunct(",") {
				break
			}
		}
	} else if len(spec.Aggs) > 0 && len(spec.Return) > 0 {
		// Non-aggregated columns become implicit group keys.
		spec.GroupBy = spec.Return
		spec.Return = nil
	}
	if l.AcceptIdent("ORDER") {
		if err := l.ExpectIdent("BY"); err != nil {
			return nil, err
		}
		for {
			ex, err := query.ParseExpr(l)
			if err != nil {
				return nil, err
			}
			// ORDER BY runs after projection/aggregation: bare column
			// names refer to output columns when projected, otherwise to
			// properties of the scanned row.
			if v, ok := ex.(query.Var); ok && v.Prop == "" {
				ex = colOrRowProp{name: v.Name}
			} else {
				ex = rewriteBareToRow(ex)
			}
			desc := false
			if l.AcceptIdent("DESC") {
				desc = true
			} else {
				l.AcceptIdent("ASC")
			}
			spec.OrderBy = append(spec.OrderBy, plan.OrderKey{Expr: ex, Desc: desc})
			if !l.AcceptPunct(",") {
				break
			}
		}
	}
	if l.AcceptIdent("LIMIT") {
		n, err := parseID(l)
		if err != nil {
			return nil, err
		}
		spec.Limit = int(n)
	}
	op, err := plan.CompileFor(&spec, e)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		return nil, plan.Stream(op, plan.WithCancel(ctx, e), cols, sink)
	}
	return plan.Collect(op, plan.WithCancel(ctx, e), cols)
}

// colOrRowProp resolves an ORDER BY key: first as an output column of the
// projection, then as a property of the implicit "row" binding.
type colOrRowProp struct{ name string }

// Eval implements query.Expr.
func (c colOrRowProp) Eval(r query.Row) (model.Value, error) {
	if e, ok := r[c.name]; ok {
		return e.Scalar(), nil
	}
	if e, ok := r["row"]; ok {
		return e.Prop(c.name), nil
	}
	return model.Null(), fmt.Errorf("gsql: ORDER BY column %q is not in the result", c.name)
}

// String implements query.Expr.
func (c colOrRowProp) String() string { return c.name }

// rewriteBareToRow maps bare identifiers (column names) to properties of the
// implicit "row" binding, and fixes aggregate ORDER BY aliases.
func rewriteBareToRow(ex query.Expr) query.Expr {
	switch x := ex.(type) {
	case query.Var:
		if x.Prop == "" && x.Name != "row" {
			return query.Var{Name: "row", Prop: x.Name}
		}
		return x
	case query.BinOp:
		return query.BinOp{Op: x.Op, L: rewriteBareToRow(x.L), R: rewriteBareToRow(x.R)}
	case query.Not:
		return query.Not{E: rewriteBareToRow(x.E)}
	case query.Neg:
		return query.Neg{E: rewriteBareToRow(x.E)}
	case query.Call:
		args := make([]query.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteBareToRow(a)
		}
		return query.Call{Fn: x.Fn, Args: args}
	default:
		return ex
	}
}

// execSelectPath implements SELECT PATH FROM a TO b [MAXLEN n].
func execSelectPath(ctx context.Context, l *query.Lexer, e Engine) (*Result, error) {
	if err := l.ExpectIdent("FROM"); err != nil {
		return nil, err
	}
	from, err := parseID(l)
	if err != nil {
		return nil, err
	}
	if err := l.ExpectIdent("TO"); err != nil {
		return nil, err
	}
	to, err := parseID(l)
	if err != nil {
		return nil, err
	}
	if l.AcceptIdent("MAXLEN") {
		n, err := parseID(l)
		if err != nil {
			return nil, err
		}
		paths, err := algo.FixedLengthPathsCtx(ctx, e, model.NodeID(from), model.NodeID(to), int(n), model.Out, 100)
		if err != nil {
			return nil, err
		}
		res := &Result{Cols: []string{"path", "length"}}
		for _, p := range paths {
			res.Rows = append(res.Rows, []model.Value{model.Str(pathString(p)), model.Int(int64(p.Len()))})
		}
		return res, nil
	}
	p, err := algo.ShortestPathCtx(ctx, e, model.NodeID(from), model.NodeID(to), model.Out)
	if err != nil {
		return nil, err
	}
	return one([]string{"path", "length"}, model.Str(pathString(p)), model.Int(int64(p.Len()))), nil
}

func pathString(p algo.Path) string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = strconv.FormatUint(uint64(n), 10)
	}
	return strings.Join(parts, "->")
}

// execSelectNeighbors implements SELECT NEIGHBORS OF id [DEPTH k].
func execSelectNeighbors(ctx context.Context, l *query.Lexer, e Engine) (*Result, error) {
	if err := l.ExpectIdent("OF"); err != nil {
		return nil, err
	}
	id, err := parseID(l)
	if err != nil {
		return nil, err
	}
	depth := 1
	if l.AcceptIdent("DEPTH") {
		n, err := parseID(l)
		if err != nil {
			return nil, err
		}
		depth = int(n)
	}
	ids, err := algo.NeighborhoodCtx(ctx, e, model.NodeID(id), depth, model.Both)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []string{"id"}}
	for _, n := range ids {
		res.Rows = append(res.Rows, []model.Value{model.Int(int64(n))})
	}
	return res, nil
}

// execSelectDegree implements SELECT DEGREE OF id, and with no OF clause
// the min/max/avg degree statistics of the whole graph.
func execSelectDegree(l *query.Lexer, e Engine) (*Result, error) {
	if l.AcceptIdent("OF") {
		id, err := parseID(l)
		if err != nil {
			return nil, err
		}
		d, err := e.Degree(model.NodeID(id), model.Both)
		if err != nil {
			return nil, err
		}
		return one([]string{"degree"}, model.Int(int64(d))), nil
	}
	st, err := algo.Degrees(e, model.Both)
	if err != nil {
		return nil, err
	}
	return one([]string{"min", "max", "avg"},
		model.Int(int64(st.Min)), model.Int(int64(st.Max)), model.Float(st.Avg)), nil
}

// execSelectDistance implements SELECT DISTANCE FROM a TO b — the length of
// a shortest path (Section IV.4's "distance between nodes").
func execSelectDistance(ctx context.Context, l *query.Lexer, e Engine) (*Result, error) {
	if err := l.ExpectIdent("FROM"); err != nil {
		return nil, err
	}
	from, err := parseID(l)
	if err != nil {
		return nil, err
	}
	if err := l.ExpectIdent("TO"); err != nil {
		return nil, err
	}
	to, err := parseID(l)
	if err != nil {
		return nil, err
	}
	d, err := algo.DistanceCtx(ctx, e, model.NodeID(from), model.NodeID(to), model.Both)
	if err != nil {
		return nil, err
	}
	return one([]string{"distance"}, model.Int(int64(d))), nil
}

// execSelectReach implements SELECT REACH FROM a TO b.
func execSelectReach(ctx context.Context, l *query.Lexer, e Engine) (*Result, error) {
	if err := l.ExpectIdent("FROM"); err != nil {
		return nil, err
	}
	from, err := parseID(l)
	if err != nil {
		return nil, err
	}
	if err := l.ExpectIdent("TO"); err != nil {
		return nil, err
	}
	to, err := parseID(l)
	if err != nil {
		return nil, err
	}
	ok, err := algo.ReachableCtx(ctx, e, model.NodeID(from), model.NodeID(to), model.Out)
	if err != nil {
		return nil, err
	}
	return one([]string{"reachable"}, model.Bool(ok)), nil
}
