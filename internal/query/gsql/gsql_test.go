package gsql

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// testEngine wraps memgraph + schema as a gsql Engine.
type testEngine struct {
	*memgraph.Graph
	schema *model.Schema
}

func (e *testEngine) Schema() *model.Schema { return e.schema }
func (e *testEngine) IndexedNodes(string, string, model.Value, func(model.Node) bool) (bool, error) {
	return false, nil
}

func newEngine(t *testing.T) *testEngine {
	t.Helper()
	return &testEngine{Graph: memgraph.New(), schema: model.NewSchema()}
}

func mustExec(t *testing.T, e Engine, stmt string) *Result {
	t.Helper()
	res, err := Exec(stmt, e)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

func seed(t *testing.T, e *testEngine) {
	t.Helper()
	mustExec(t, e, `CREATE VERTEX TYPE Person (name STRING REQUIRED UNIQUE, age INT)`)
	mustExec(t, e, `CREATE EDGE TYPE knows FROM Person TO Person`)
	mustExec(t, e, `INSERT VERTEX Person (name = 'ada', age = 36)`)
	mustExec(t, e, `INSERT VERTEX Person (name = 'bob', age = 40)`)
	mustExec(t, e, `INSERT VERTEX Person (name = 'cam', age = 25)`)
	mustExec(t, e, `INSERT EDGE knows FROM 1 TO 2`)
	mustExec(t, e, `INSERT EDGE knows FROM 2 TO 3`)
}

func TestDDL(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE VERTEX TYPE Person (name STRING REQUIRED, age INT)`)
	nt, ok := e.schema.NodeType("Person")
	if !ok || len(nt.Properties) != 2 || !nt.Properties[0].Required {
		t.Fatalf("node type = %+v", nt)
	}
	mustExec(t, e, `CREATE EDGE TYPE knows FROM Person TO Person`)
	rt, ok := e.schema.RelationType("knows")
	if !ok || rt.From != "Person" {
		t.Fatalf("relation type = %+v", rt)
	}
	mustExec(t, e, `DROP EDGE TYPE knows`)
	if _, ok := e.schema.RelationType("knows"); ok {
		t.Error("knows not dropped")
	}
	mustExec(t, e, `DROP VERTEX TYPE Person`)
	if _, ok := e.schema.NodeType("Person"); ok {
		t.Error("Person not dropped")
	}
	// Errors.
	if _, err := Exec(`CREATE VERTEX Person`, e); err == nil {
		t.Error("missing TYPE should fail")
	}
	if _, err := Exec(`CREATE VERTEX TYPE X (p BOGUS)`, e); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := Exec(`DROP VERTEX TYPE Ghost`, e); err == nil {
		t.Error("dropping missing type should fail")
	}
}

func TestInsertAndSelect(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	res := mustExec(t, e, `SELECT name, age FROM Person WHERE age > 30 ORDER BY age DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "bob" {
		t.Errorf("first = %q", n)
	}
	if !res.Rows[0][1].Equal(model.Int(40)) {
		t.Errorf("age = %v", res.Rows[0][1])
	}
}

func TestSelectStarUsesSchema(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	res := mustExec(t, e, `SELECT * FROM Person WHERE name = 'ada'`)
	if len(res.Cols) != 2 || len(res.Rows) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// SELECT * from an undeclared type fails.
	if _, err := Exec(`SELECT * FROM Ghost`, e); err == nil {
		t.Error("SELECT * on unknown type should fail")
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	res := mustExec(t, e, `SELECT count(*) AS n, avg(age) AS a FROM Person`)
	if !res.Rows[0][0].Equal(model.Int(3)) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	mustExec(t, e, `INSERT VERTEX Person (name = 'dot', age = 36)`)
	res2 := mustExec(t, e, `SELECT age, count(*) AS n FROM Person GROUP BY age ORDER BY n DESC LIMIT 1`)
	if len(res2.Rows) != 1 {
		t.Fatalf("rows = %v", res2.Rows)
	}
	if !res2.Rows[0][1].Equal(model.Int(2)) {
		t.Errorf("top group count = %v", res2.Rows[0][1])
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	mustExec(t, e, `UPDATE VERTEX 1 SET age = 37`)
	res := mustExec(t, e, `SELECT age FROM Person WHERE name = 'ada'`)
	if !res.Rows[0][0].Equal(model.Int(37)) {
		t.Errorf("age = %v", res.Rows[0][0])
	}
	mustExec(t, e, `DELETE EDGE 1`)
	if e.Size() != 1 {
		t.Errorf("edges = %d", e.Size())
	}
	mustExec(t, e, `DELETE VERTEX 1`)
	if e.Order() != 2 {
		t.Errorf("nodes = %d", e.Order())
	}
	if _, err := Exec(`DELETE VERTEX 99`, e); err == nil {
		t.Error("deleting missing vertex should fail")
	}
}

func TestGraphInstructions(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	// Shortest path 1 -> 3 via 2.
	res := mustExec(t, e, `SELECT PATH FROM 1 TO 3`)
	if p, _ := res.Rows[0][0].AsString(); p != "1->2->3" {
		t.Errorf("path = %q", p)
	}
	if !res.Rows[0][1].Equal(model.Int(2)) {
		t.Errorf("length = %v", res.Rows[0][1])
	}
	// Fixed length.
	res2 := mustExec(t, e, `SELECT PATH FROM 1 TO 3 MAXLEN 2`)
	if len(res2.Rows) != 1 {
		t.Errorf("maxlen rows = %v", res2.Rows)
	}
	// Neighborhood.
	res3 := mustExec(t, e, `SELECT NEIGHBORS OF 2 DEPTH 1`)
	if len(res3.Rows) != 2 {
		t.Errorf("neighbors = %v", res3.Rows)
	}
	// Reachability.
	res4 := mustExec(t, e, `SELECT REACH FROM 1 TO 3`)
	if b, _ := res4.Rows[0][0].AsBool(); !b {
		t.Error("1 should reach 3")
	}
	res5 := mustExec(t, e, `SELECT REACH FROM 3 TO 1`)
	if b, _ := res5.Rows[0][0].AsBool(); b {
		t.Error("3 should not reach 1")
	}
}

func TestSelectDistinct(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	mustExec(t, e, `INSERT VERTEX Person (name = 'eve', age = 36)`)
	res := mustExec(t, e, `SELECT DISTINCT age FROM Person`)
	if len(res.Rows) != 3 {
		t.Errorf("distinct ages = %v", res.Rows)
	}
}

func TestStatementErrors(t *testing.T) {
	e := newEngine(t)
	for _, bad := range []string{
		``,
		`42`,
		`FROB X`,
		`INSERT TABLE x`,
		`SELECT name FROM`,
		`SELECT PATH FROM a TO b`,
		`UPDATE VERTEX x SET a = 1`,
		`INSERT EDGE knows FROM 1`,
	} {
		if _, err := Exec(bad, e); err == nil {
			t.Errorf("exec %q should fail", bad)
		}
	}
}

func TestInsertEdgeMissingEndpoint(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	if _, err := Exec(`INSERT EDGE knows FROM 1 TO 99`, e); err == nil {
		t.Error("missing endpoint should fail")
	}
}

func TestSummarizationInstructions(t *testing.T) {
	e := newEngine(t)
	seed(t, e)
	res := mustExec(t, e, `SELECT ORDER`)
	if !res.Rows[0][0].Equal(model.Int(3)) {
		t.Errorf("order = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, `SELECT SIZE`)
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("size = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, `SELECT DEGREE OF 2`)
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("degree = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, `SELECT DEGREE`)
	if len(res.Cols) != 3 {
		t.Fatalf("degree stats cols = %v", res.Cols)
	}
	res = mustExec(t, e, `SELECT DIAMETER`)
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("diameter = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, `SELECT DISTANCE FROM 1 TO 3`)
	if !res.Rows[0][0].Equal(model.Int(2)) {
		t.Errorf("distance = %v", res.Rows[0][0])
	}
	if _, err := Exec(`SELECT DISTANCE FROM 1`, e); err == nil {
		t.Error("missing TO should fail")
	}
}
