// Package query holds the building blocks shared by the three query
// languages in this repository (the Cypher-like gql, the SPARQL-like
// sparqlish, and the SQL-like gsql): a lexer, an expression AST with an
// evaluator, and the row/binding environment. The survey's Table II and
// Table V compare which engines expose which language; the front-ends live
// in the subpackages.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct
	TokVar // ?name (sparqlish variables)
	TokIRI // <iri> (sparqlish IRIs)
)

// Token is one lexical element.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// Lexer splits an input string into tokens. Keywords are not distinguished
// from identifiers at this level; parsers match identifier text
// case-insensitively.
type Lexer struct {
	input string
	pos   int
	// IRIMode enables <...> IRI tokens and ?var tokens (sparqlish).
	IRIMode bool
	peeked  *Token
}

// NewLexer returns a lexer over input.
func NewLexer(input string) *Lexer { return &Lexer{input: input} }

// Errorf formats a parse error with position context.
func (l *Lexer) Errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() (Token, error) {
	if l.peeked == nil {
		t, err := l.lex()
		if err != nil {
			return Token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

// Next consumes and returns the next token.
func (l *Lexer) Next() (Token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.lex()
}

// AcceptIdent consumes the next token if it is the given keyword
// (case-insensitive).
func (l *Lexer) AcceptIdent(kw string) bool {
	t, err := l.Peek()
	if err != nil || t.Kind != TokIdent || !strings.EqualFold(t.Text, kw) {
		return false
	}
	l.Next()
	return true
}

// ExpectIdent consumes the given keyword or fails.
func (l *Lexer) ExpectIdent(kw string) error {
	t, err := l.Next()
	if err != nil {
		return err
	}
	if t.Kind != TokIdent || !strings.EqualFold(t.Text, kw) {
		return l.Errorf(t.Pos, "expected %q, got %q", kw, t.Text)
	}
	return nil
}

// AcceptPunct consumes the next token if it is the given punctuation.
func (l *Lexer) AcceptPunct(p string) bool {
	t, err := l.Peek()
	if err != nil || t.Kind != TokPunct || t.Text != p {
		return false
	}
	l.Next()
	return true
}

// ExpectPunct consumes the given punctuation or fails.
func (l *Lexer) ExpectPunct(p string) error {
	t, err := l.Next()
	if err != nil {
		return err
	}
	if t.Kind != TokPunct || t.Text != p {
		return l.Errorf(t.Pos, "expected %q, got %q", p, t.Text)
	}
	return nil
}

// multi-character punctuation, longest first.
var multiPunct = []string{"<=", ">=", "<>", "!=", "->", "<-", "=~"}

func (l *Lexer) lex() (Token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]

	// sparqlish variables and IRIs.
	if l.IRIMode && c == '?' {
		l.pos++
		for l.pos < len(l.input) && isIdentChar(l.input[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return Token{}, l.Errorf(start, "empty variable name")
		}
		return Token{Kind: TokVar, Text: l.input[start+1 : l.pos], Pos: start}, nil
	}
	if l.IRIMode && c == '<' {
		end := strings.IndexByte(l.input[l.pos:], '>')
		if end < 0 {
			return Token{}, l.Errorf(start, "unterminated IRI")
		}
		tok := Token{Kind: TokIRI, Text: l.input[l.pos+1 : l.pos+end], Pos: start}
		l.pos += end + 1
		return tok, nil
	}

	// Strings: single or double quoted with backslash escapes.
	if c == '\'' || c == '"' {
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch == '\\' && l.pos+1 < len(l.input) {
				next := l.input[l.pos+1]
				switch next {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(next)
				}
				l.pos += 2
				continue
			}
			if ch == quote {
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{}, l.Errorf(start, "unterminated string")
	}

	// Numbers: integer or decimal, with optional leading minus handled by
	// parsers as unary.
	if c >= '0' && c <= '9' {
		for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9') {
			l.pos++
		}
		if l.pos < len(l.input) && l.input[l.pos] == '.' && l.pos+1 < len(l.input) &&
			l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9' {
			l.pos++
			for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9') {
				l.pos++
			}
		}
		return Token{Kind: TokNumber, Text: l.input[start:l.pos], Pos: start}, nil
	}

	// Identifiers.
	if isIdentStart(c) {
		for l.pos < len(l.input) && isIdentChar(l.input[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.input[start:l.pos], Pos: start}, nil
	}

	// Punctuation.
	for _, mp := range multiPunct {
		if strings.HasPrefix(l.input[l.pos:], mp) {
			l.pos += len(mp)
			return Token{Kind: TokPunct, Text: mp, Pos: start}, nil
		}
	}
	l.pos++
	return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
