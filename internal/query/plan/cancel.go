package plan

import (
	"context"

	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

// cancelStride is how many streamed records pass between context checks.
// A power of two keeps the check a mask-and-branch; 64 keeps worst-case
// overrun after cancellation to a handful of microseconds of scan work.
const cancelStride = 64

// WithCancel wraps src so that long scans observe ctx: every streaming
// read (Nodes, Edges, Neighbors, IndexedNodes) re-checks ctx once per
// cancelStride records and aborts with ctx.Err() once the context is
// done. Point reads check on entry. Contexts that can never be cancelled
// (ctx.Done() == nil, e.g. context.Background()) return src unchanged, so
// the untimed path pays nothing.
//
// The wrapper is the query executor's half of the deadline contract: the
// operators of this package stream rows through a Source, so a deadline
// threaded into the Source interrupts every operator without each one
// knowing about contexts.
func WithCancel(ctx context.Context, src Source) Source {
	if ctx.Done() == nil {
		return src
	}
	return &cancelSource{src: src, ctx: ctx}
}

// cancelSource decorates a Source with periodic context checks. Query
// execution is single-goroutine, so the stride counter needs no locking.
type cancelSource struct {
	src Source
	ctx context.Context
	n   uint
}

// tick reports the context error, checking it once per cancelStride calls
// (and always on the first).
func (c *cancelSource) tick() error {
	c.n++
	if c.n%cancelStride == 1 {
		return c.ctx.Err()
	}
	return nil
}

func (c *cancelSource) Order() int { return c.src.Order() }
func (c *cancelSource) Size() int  { return c.src.Size() }

func (c *cancelSource) Node(id model.NodeID) (model.Node, error) {
	if err := c.tick(); err != nil {
		return model.Node{}, err
	}
	return c.src.Node(id)
}

func (c *cancelSource) Edge(id model.EdgeID) (model.Edge, error) {
	if err := c.tick(); err != nil {
		return model.Edge{}, err
	}
	return c.src.Edge(id)
}

func (c *cancelSource) Degree(id model.NodeID, dir model.Direction) (int, error) {
	if err := c.tick(); err != nil {
		return 0, err
	}
	return c.src.Degree(id, dir)
}

// stream adapts one streaming read: fn's false return already stops the
// underlying iteration, so a pending context error is smuggled out through
// the stop path and surfaced as the call's error.
func (c *cancelSource) stream(run func(stop func() bool) error) error {
	var ctxErr error
	err := run(func() bool {
		if e := c.tick(); e != nil {
			ctxErr = e
			return false
		}
		return true
	})
	if ctxErr != nil {
		return ctxErr
	}
	return err
}

func (c *cancelSource) Nodes(fn func(model.Node) bool) error {
	return c.stream(func(stop func() bool) error {
		return c.src.Nodes(func(n model.Node) bool {
			if !stop() {
				return false
			}
			return fn(n)
		})
	})
}

func (c *cancelSource) Edges(fn func(model.Edge) bool) error {
	return c.stream(func(stop func() bool) error {
		return c.src.Edges(func(e model.Edge) bool {
			if !stop() {
				return false
			}
			return fn(e)
		})
	})
}

func (c *cancelSource) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	return c.stream(func(stop func() bool) error {
		return c.src.Neighbors(id, dir, func(e model.Edge, n model.Node) bool {
			if !stop() {
				return false
			}
			return fn(e, n)
		})
	})
}

// SortedNeighborIDs forwards the sorted-adjacency capability so the
// intersection operator stays cancellable: a native list costs one tick,
// and the collect-and-sort fallback streams through the wrapper's
// Neighbors, ticking once per record as every other scan does.
func (c *cancelSource) SortedNeighborIDs(id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	if sa, ok := c.src.(model.SortedAdjacency); ok {
		if err := c.tick(); err != nil {
			return nil, err
		}
		return sa.SortedNeighborIDs(id, dir, label)
	}
	var ids []model.NodeID
	err := c.Neighbors(id, dir, func(e model.Edge, n model.Node) bool {
		if label == "" || e.Label == label {
			ids = append(ids, n.ID)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sortNodeIDs(ids)
	return ids, nil
}

// PlanStats forwards the statistics capability so plan selection sees
// through the cancellation wrapper.
func (c *cancelSource) PlanStats() (*stats.Stats, error) {
	if sp, ok := c.src.(stats.Provider); ok {
		return sp.PlanStats()
	}
	return nil, nil
}

func (c *cancelSource) IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (bool, error) {
	var handled bool
	err := c.stream(func(stop func() bool) error {
		var innerErr error
		handled, innerErr = c.src.IndexedNodes(label, prop, v, func(n model.Node) bool {
			if !stop() {
				return false
			}
			return fn(n)
		})
		return innerErr
	})
	return handled, err
}
