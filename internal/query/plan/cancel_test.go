package plan

import (
	"context"
	"errors"
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func cancelTestSource(t *testing.T, n int) Source {
	t.Helper()
	g := memgraph.New()
	for i := 0; i < n; i++ {
		if _, err := g.AddNode("N", model.Props("i", i)); err != nil {
			t.Fatal(err)
		}
	}
	return UnindexedSource{g}
}

// TestWithCancelIdentity: a context that can never be cancelled must not pay
// for wrapping — WithCancel returns the source unchanged.
func TestWithCancelIdentity(t *testing.T) {
	src := cancelTestSource(t, 1)
	if got := WithCancel(context.Background(), src); got != src {
		t.Fatalf("WithCancel(Background) wrapped the source: %T", got)
	}
}

// TestWithCancelStopsScan: a cancelled context aborts a full node scan within
// one check stride and surfaces context.Canceled, not a silent short result.
func TestWithCancelStopsScan(t *testing.T) {
	src := cancelTestSource(t, 10*cancelStride)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	wrapped := WithCancel(ctx, src)

	seen := 0
	err := wrapped.Nodes(func(model.Node) bool {
		seen++
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Nodes under cancelled ctx: got %v, want context.Canceled", err)
	}
	if seen > cancelStride {
		t.Fatalf("scan delivered %d rows after cancellation (stride %d)", seen, cancelStride)
	}
}

// TestWithCancelMidScan cancels from inside the callback; the scan must stop
// within a stride and report the context error.
func TestWithCancelMidScan(t *testing.T) {
	src := cancelTestSource(t, 10*cancelStride)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := WithCancel(ctx, src)

	seen := 0
	err := wrapped.Nodes(func(model.Node) bool {
		seen++
		if seen == 2 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Nodes after mid-scan cancel: got %v, want context.Canceled", err)
	}
	if seen > 2+cancelStride {
		t.Fatalf("scan delivered %d rows after cancellation (stride %d)", seen, cancelStride)
	}
}

// TestWithCancelPassesResults: an uncancelled wrapped source answers exactly
// like the bare one.
func TestWithCancelPassesResults(t *testing.T) {
	src := cancelTestSource(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := WithCancel(ctx, src)

	seen := 0
	if err := wrapped.Nodes(func(model.Node) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Fatalf("scan saw %d nodes, want 100", seen)
	}
	if wrapped.Order() != 100 || wrapped.Size() != 0 {
		t.Fatalf("Order/Size: %d/%d", wrapped.Order(), wrapped.Size())
	}
	if _, err := wrapped.Node(1); err != nil {
		t.Fatal(err)
	}
}
