package plan

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gdbm/internal/model"
)

// Pattern canonicalization: the cost-based planner must produce the same
// estimate (and, up to automorphism, the same plan) no matter how the
// pattern was declared — node order, edge order, Both-edge orientation,
// and variable names are all presentation, not semantics. The greedy
// search therefore never tie-breaks on a declaration index; it uses the
// ranks computed here, which derive only from pattern structure via
// Weisfeiler-Leman color refinement over the pattern multigraph.
//
// Nodes left indistinguishable after refinement are automorphic for every
// pattern small enough to plan (1-WL separates non-isomorphic graphs below
// six nodes), so breaking their ties by declaration index cannot change
// any cost: the symmetric choices price identically.

// canonRanks orders pattern nodes and edges canonically. nodeOrder/
// edgeOrder list indices in canonical order; nodeRank/edgeRank invert them.
type canonRanks struct {
	nodeOrder, edgeOrder []int
	nodeRank, edgeRank   []int
}

// canonicalize computes canonRanks for a prepared spec.
func canonicalize(spec *MatchSpec) canonRanks {
	n := len(spec.Nodes)
	colors := make([]uint64, n)
	for i, np := range spec.Nodes {
		h := fnv.New64a()
		h.Write([]byte(np.Label))
		h.Write([]byte{0})
		props := make([]string, 0, len(np.Props))
		for k, v := range np.Props {
			props = append(props, k+"="+string(v.EncodeKey(nil)))
		}
		sort.Strings(props)
		for _, s := range props {
			h.Write([]byte(s))
			h.Write([]byte{1})
		}
		colors[i] = h.Sum64()
	}

	// edgeSig describes edge ei as seen from endpoint `from` — direction is
	// relative, so a flipped Both edge signs identically. Variable names
	// are deliberately absent (renaming is presentation); whether an edge
	// binds one is not (it gates WCO eligibility).
	edgeSig := func(ei, from int) string {
		e := spec.Edges[ei]
		dir := e.Dir
		if from == e.To {
			dir = dir.Reverse()
		}
		return fmt.Sprintf("%s/%d/%t/%d/%d/%t", e.Label, dir, e.VarLength, e.Min, e.Max, e.Var != "")
	}

	for round := 0; round < n; round++ {
		next := make([]uint64, n)
		for i := range spec.Nodes {
			var sigs []string
			for ei, e := range spec.Edges {
				if e.From == i {
					sigs = append(sigs, fmt.Sprintf("%s>%016x", edgeSig(ei, i), colors[e.To]))
				}
				if e.To == i {
					sigs = append(sigs, fmt.Sprintf("%s>%016x", edgeSig(ei, i), colors[e.From]))
				}
			}
			sort.Strings(sigs)
			h := fnv.New64a()
			fmt.Fprintf(h, "%016x|", colors[i])
			for _, s := range sigs {
				h.Write([]byte(s))
				h.Write([]byte{2})
			}
			next[i] = h.Sum64()
		}
		colors = next
	}

	cr := canonRanks{
		nodeOrder: make([]int, n),
		edgeOrder: make([]int, len(spec.Edges)),
		nodeRank:  make([]int, n),
		edgeRank:  make([]int, len(spec.Edges)),
	}
	for i := range cr.nodeOrder {
		cr.nodeOrder[i] = i
	}
	sort.Slice(cr.nodeOrder, func(a, b int) bool {
		ia, ib := cr.nodeOrder[a], cr.nodeOrder[b]
		if colors[ia] != colors[ib] {
			return colors[ia] < colors[ib]
		}
		return ia < ib
	})
	for rank, i := range cr.nodeOrder {
		cr.nodeRank[i] = rank
	}

	// Edge keys combine the refined endpoint colors with the edge's own
	// signature; Both edges use the unordered color pair so reversal
	// cannot move an edge in the canonical order.
	ekey := func(ei int) string {
		e := spec.Edges[ei]
		a, b := colors[e.From], colors[e.To]
		if e.Dir == model.Both && a > b {
			a, b = b, a
		}
		return fmt.Sprintf("%s/%016x/%016x", edgeSig(ei, e.From), a, b)
	}
	keys := make([]string, len(spec.Edges))
	for ei := range spec.Edges {
		keys[ei] = ekey(ei)
		cr.edgeOrder[ei] = ei
	}
	sort.Slice(cr.edgeOrder, func(a, b int) bool {
		ia, ib := cr.edgeOrder[a], cr.edgeOrder[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		return ia < ib
	})
	for rank, ei := range cr.edgeOrder {
		cr.edgeRank[ei] = rank
	}
	return cr
}
