package plan

import (
	"math"

	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

// varLenDefaultMax bounds the fanout model of an unbounded var-length edge:
// past a few hops the reachable set saturates toward the whole graph, which
// the estimator caps at anyway, so deeper modelling buys nothing.
const varLenDefaultMax = 3

// estFloor keeps intermediate estimates strictly positive so products and
// ratios stay ordered; zero-cardinality inputs still plan deterministically.
const estFloor = 1e-6

// Estimate is the cost model's verdict on a compiled plan: Rows is the
// expected output cardinality of the pattern subtree, Cost the expected
// number of row visits across all operators (scan rows read + expansions
// performed). Both are order-of-magnitude instruments, not predictions.
type Estimate struct {
	Rows float64
	Cost float64
}

// CostClass buckets Cost by decimal order of magnitude. Metamorphic tests
// compare classes, not raw costs: permuting a spec's declaration order may
// legitimately flip tie-breaks, but it must never move a plan to a
// different order of magnitude.
func (e Estimate) CostClass() int {
	c := e.Cost
	if c < 1 {
		c = 1
	}
	return int(math.Floor(math.Log10(c) + 1e-9))
}

// Planner is the cost-based compiler. Stats drives cardinality estimation
// (nil falls back to uniform textbook assumptions — still deterministic);
// WCO additionally enables the multiway-intersection operator for nodes
// that close two or more edges to already-bound nodes (the cyclic cores:
// triangles, diamonds).
type Planner struct {
	Stats *stats.Stats
	WCO   bool
}

// candidate is one considered planning action: bind node `node` by either a
// single cheapest Expand (edges has one entry) or a multiway intersection
// (edges has several). rows/cost estimate the state after applying it.
type candidate struct {
	node      int
	rank      int // canonical rank of node (canon.go), the final tie-break
	edges     []int
	intersect bool
	rows      float64
	cost      float64
}

// better orders candidates: fewest estimated rows, then least cost, then
// lowest canonical node rank. Ranking on canonical structure — never on a
// declaration index — is what makes the estimate invariant under pattern
// permutation; the relative epsilon absorbs the float noise different
// summation orders introduce.
func better(a, b candidate) bool {
	const eps = 1e-9
	if a.rows < b.rows*(1-eps) {
		return true
	}
	if b.rows < a.rows*(1-eps) {
		return false
	}
	if a.cost < b.cost*(1-eps) {
		return true
	}
	if b.cost < a.cost*(1-eps) {
		return false
	}
	return a.rank < b.rank
}

// Compile turns a MatchSpec into an operator tree ordered by estimated
// cost: it starts from the cheapest node pattern, then greedily applies
// whichever action — single-edge expansion, multiway intersection (when
// WCO), or cross-scan for disconnected components — yields the fewest
// estimated rows. Edges between two bound nodes are closed as connectivity
// checks as soon as both ends bind. The produced tree uses exactly the
// operators the naive planner uses (plus IntersectExpand under WCO), and
// applyModifiers is shared, so results are answer-equivalent by
// construction; only the join order differs.
func (p Planner) Compile(spec *MatchSpec) (Op, Estimate, error) {
	if err := prepare(spec); err != nil {
		return nil, Estimate{}, err
	}
	st := p.Stats
	cn := canonicalize(spec)
	n := len(spec.Nodes)
	bound := make([]bool, n)
	edgeDone := make([]bool, len(spec.Edges))
	est := Estimate{Rows: 1}
	var root Op

	total := st.CountNodes("")
	if total < 1 {
		total = 1
	}

	// nodeCard estimates how many nodes match pattern i's label and
	// property equalities.
	nodeCard := func(i int) float64 {
		np := spec.Nodes[i]
		c := st.CountNodes(np.Label)
		for prop := range np.Props {
			c *= st.PropSelectivity(np.Label, prop)
		}
		if c < estFloor {
			c = estFloor
		}
		return c
	}
	// nodeSel is the fraction of all nodes matching pattern i — the filter
	// selectivity applied to an expansion's endpoints.
	nodeSel := func(i int) float64 {
		s := nodeCard(i) / total
		if s > 1 {
			s = 1
		}
		return s
	}
	// scanRows is how many rows a scan of pattern i reads: the label
	// partition when labelled (engines index labels), the full node set
	// otherwise.
	scanRows := func(i int) float64 {
		if spec.Nodes[i].Label != "" {
			return st.CountNodes(spec.Nodes[i].Label)
		}
		return total
	}
	// edgeFan is the expansion factor of edge ei traversed out of endpoint
	// fromIdx; var-length edges model geometric growth to their effective
	// maximum depth, capped at the graph order.
	edgeFan := func(ei, fromIdx int) float64 {
		e := spec.Edges[ei]
		dir := e.Dir
		if fromIdx == e.To {
			dir = dir.Reverse()
		}
		f := st.Fanout(e.Label, dir)
		if e.VarLength {
			max := e.Max
			if max <= 0 || max > varLenDefaultMax {
				max = varLenDefaultMax
			}
			sum, step := 0.0, 1.0
			for d := 1; d <= max; d++ {
				step *= f
				sum += step
				if sum > total {
					sum = total
					break
				}
			}
			if e.Min == 0 {
				sum++
			}
			f = sum
		}
		if f < estFloor {
			f = estFloor
		}
		return f
	}

	// expandOp builds the same physical op the naive planner would for edge
	// ei traversed from fromIdx to toIdx.
	expandOp := func(child Op, ei, fromIdx, toIdx int) Op {
		e := spec.Edges[ei]
		dir := e.Dir
		if fromIdx == e.To {
			dir = dir.Reverse()
		}
		if e.VarLength {
			return &ExpandVar{
				Child:   child,
				FromVar: spec.Nodes[fromIdx].Var,
				ToVar:   spec.Nodes[toIdx].Var,
				Label:   e.Label,
				Dir:     dir,
				Min:     e.Min,
				Max:     e.Max,
			}
		}
		return &Expand{
			Child:   child,
			FromVar: spec.Nodes[fromIdx].Var,
			EdgeVar: e.Var,
			ToVar:   spec.Nodes[toIdx].Var,
			Label:   e.Label,
			Dir:     dir,
		}
	}

	// closeChecks applies every pending edge whose endpoints are both bound
	// as a connectivity check, in canonical edge order (so the cost sum is
	// declaration-order independent).
	closeChecks := func() {
		for _, ei := range cn.edgeOrder {
			e := spec.Edges[ei]
			if edgeDone[ei] || !bound[e.From] || !bound[e.To] {
				continue
			}
			f := edgeFan(ei, e.From)
			root = expandOp(root, ei, e.From, e.To)
			est.Cost += est.Rows * f
			est.Rows *= f / total
			if est.Rows < estFloor {
				est.Rows = estFloor
			}
			edgeDone[ei] = true
		}
	}

	// crossScan binds node i by scanning it against the current rows (or as
	// the leaf scan when the tree is empty).
	crossScan := func(i int) {
		np := spec.Nodes[i]
		scan := &NodeScan{Var: np.Var, Label: np.Label, PropEq: np.Props}
		if root != nil {
			scan.Child = root
		}
		root = scan
		est.Cost += est.Rows * scanRows(i)
		est.Rows *= nodeCard(i)
		bound[i] = true
	}

	for {
		closeChecks()
		if allTrue(bound) && allTrue(edgeDone) {
			break
		}

		var best candidate
		found := false
		consider := func(c candidate) {
			if c.rows < estFloor {
				c.rows = estFloor
			}
			if !found || better(c, best) {
				best, found = c, true
			}
		}
		for _, i := range cn.nodeOrder {
			if bound[i] {
				continue
			}
			// Edges linking i to a bound endpoint, in canonical order.
			var link, isect []int
			for _, ei := range cn.edgeOrder {
				e := spec.Edges[ei]
				if edgeDone[ei] {
					continue
				}
				if (e.From == i && bound[e.To]) || (e.To == i && bound[e.From]) {
					link = append(link, ei)
					if !e.VarLength && e.Var == "" {
						isect = append(isect, ei)
					}
				}
			}
			if len(link) == 0 {
				continue
			}
			if p.WCO && len(isect) >= 2 {
				// Multiway intersection: each list costs one fanout to
				// enumerate; the result keeps only IDs common to all
				// lists, so each extra list divides rows by the graph
				// order.
				prod, sum := 1.0, 0.0
				for _, ei := range isect {
					e := spec.Edges[ei]
					from := e.From
					if from == i {
						from = e.To
					}
					f := edgeFan(ei, from)
					prod *= f
					sum += f
				}
				rows := est.Rows * prod / math.Pow(total, float64(len(isect)-1)) * nodeSel(i)
				consider(candidate{node: i, rank: cn.nodeRank[i], edges: isect, intersect: true, rows: rows, cost: est.Rows * sum})
			}
			// Single-edge expansion through the cheapest linking edge; link
			// is in canonical order, so first-wins ties canonically.
			bestEi, bestF := -1, 0.0
			for _, ei := range link {
				e := spec.Edges[ei]
				from := e.From
				if from == i {
					from = e.To
				}
				f := edgeFan(ei, from)
				if bestEi == -1 || f < bestF {
					bestEi, bestF = ei, f
				}
			}
			consider(candidate{node: i, rank: cn.nodeRank[i], edges: []int{bestEi}, rows: est.Rows * bestF * nodeSel(i), cost: est.Rows * bestF})
		}

		if !found {
			// Disconnected component (or nothing bound yet): scan the
			// cheapest unbound node pattern. Canonical iteration order makes
			// exact-tie winners declaration-order independent.
			next := -1
			for _, i := range cn.nodeOrder {
				if !bound[i] && (next == -1 || nodeCard(i) < nodeCard(next)) {
					next = i
				}
			}
			if next == -1 {
				break
			}
			crossScan(next)
			continue
		}

		if best.intersect {
			inputs := make([]IntersectInput, len(best.edges))
			for k, ei := range best.edges {
				e := spec.Edges[ei]
				from, dir := e.From, e.Dir
				if from == best.node {
					from, dir = e.To, e.Dir.Reverse()
				}
				inputs[k] = IntersectInput{FromVar: spec.Nodes[from].Var, Label: e.Label, Dir: dir}
				edgeDone[ei] = true
			}
			root = &IntersectExpand{Child: root, Inputs: inputs, ToVar: spec.Nodes[best.node].Var}
			root = constrainNode(root, spec.Nodes[best.node])
		} else {
			ei := best.edges[0]
			e := spec.Edges[ei]
			from := e.From
			if from == best.node {
				from = e.To
			}
			root = expandOp(root, ei, from, best.node)
			root = constrainNode(root, spec.Nodes[best.node])
			edgeDone[ei] = true
		}
		est.Rows = best.rows
		est.Cost += best.cost
		bound[best.node] = true
	}

	return applyModifiers(root, spec), est, nil
}

// CompileFor compiles spec with the best planner the source supports: when
// src (or what it wraps) publishes planning statistics, the cost-based
// planner with the WCO operator; otherwise the naive declaration-order
// compiler. Statistics errors degrade to the naive plan rather than failing
// the query — plan choice must never make an answerable query error.
func CompileFor(spec *MatchSpec, src Source) (Op, error) {
	if sp, ok := src.(stats.Provider); ok {
		if st, err := sp.PlanStats(); err == nil && st != nil {
			op, _, cerr := Planner{Stats: st, WCO: true}.Compile(spec)
			return op, cerr
		}
	}
	return Compile(spec)
}

// SortedNeighborIDs returns the IDs of id's neighbors in dir through edges
// carrying label ("" = any), ascending, one entry per matching edge. Graphs
// implementing model.SortedAdjacency answer natively; anything else is
// served by collecting Neighbors and sorting.
func SortedNeighborIDs(g model.Graph, id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	if sa, ok := g.(model.SortedAdjacency); ok {
		return sa.SortedNeighborIDs(id, dir, label)
	}
	var ids []model.NodeID
	err := g.Neighbors(id, dir, func(e model.Edge, n model.Node) bool {
		if label == "" || e.Label == label {
			ids = append(ids, n.ID)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sortNodeIDs(ids)
	return ids, nil
}
