package plan

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query"
	"gdbm/internal/query/stats"
)

// web builds a graph with cyclic structure for the reordering tests:
// a Person triangle (ada-bob-cam, all "knows", with a parallel ada->bob),
// a diamond (ada->bob->dan, ada->cam->dan), a self-loop on dan, and a
// disconnected City. Returns the source and its statistics.
func web(t *testing.T) (Source, *stats.Stats) {
	t.Helper()
	g := memgraph.New()
	ids := map[string]model.NodeID{}
	for _, name := range []string{"ada", "bob", "cam", "dan"} {
		id, err := g.AddNode("Person", model.Props("name", name))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	cid, err := g.AddNode("City", model.Props("name", "zurich"))
	if err != nil {
		t.Fatal(err)
	}
	ids["zurich"] = cid
	addEdge := func(label, from, to string) {
		if _, err := g.AddEdge(label, ids[from], ids[to], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Triangle with one parallel edge.
	addEdge("knows", "ada", "bob")
	addEdge("knows", "ada", "bob") // parallel
	addEdge("knows", "bob", "cam")
	addEdge("knows", "ada", "cam")
	// Diamond ada->{bob,cam}->dan.
	addEdge("follows", "ada", "bob")
	addEdge("follows", "ada", "cam")
	addEdge("follows", "bob", "dan")
	addEdge("follows", "cam", "dan")
	// Self-loop.
	addEdge("knows", "dan", "dan")
	st, err := g.PlanStats()
	if err != nil {
		t.Fatal(err)
	}
	return UnindexedSource{g}, st
}

// canon renders a result as order-insensitive canonical text.
func canon(t *testing.T, res *Result) string {
	t.Helper()
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var kb []byte
		for _, v := range row {
			kb = v.EncodeKey(kb)
			kb = append(kb, '|')
		}
		lines[i] = string(kb)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// compileAll compiles spec under the naive planner, the cost-based planner,
// and the cost-based planner with WCO, on independent spec copies.
func compileAll(t *testing.T, spec *MatchSpec, st *stats.Stats) (naive, costed, wco Op) {
	t.Helper()
	copySpec := func() *MatchSpec {
		s := *spec
		s.Nodes = append([]NodePat(nil), spec.Nodes...)
		s.Edges = append([]EdgePat(nil), spec.Edges...)
		return &s
	}
	var err error
	naive, err = Compile(copySpec())
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	costed, _, err = Planner{Stats: st}.Compile(copySpec())
	if err != nil {
		t.Fatalf("cost: %v", err)
	}
	wco, _, err = Planner{Stats: st, WCO: true}.Compile(copySpec())
	if err != nil {
		t.Fatalf("wco: %v", err)
	}
	return naive, costed, wco
}

func nameItem(v string) Item {
	return Item{Name: v, Expr: query.Var{Name: v, Prop: "name"}}
}

// TestPlannersAgree is the in-package differential table: every spec must
// render identically under all three planners, and the WCO planner must
// actually choose the intersection operator on the cyclic cores.
func TestPlannersAgree(t *testing.T) {
	src, st := web(t)
	cases := []struct {
		name      string
		spec      MatchSpec
		wantRows  int  // -1 = don't check, only cross-planner identity
		wantWCO   bool // WCO plan must contain an Intersect operator
		wantEmpty bool
	}{
		{
			name: "triangle",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}},
				Edges: []EdgePat{
					{Label: "knows", From: 0, To: 1, Dir: model.Out},
					{Label: "knows", From: 1, To: 2, Dir: model.Out},
					{Label: "knows", From: 0, To: 2, Dir: model.Out},
				},
				Return: []Item{nameItem("a"), nameItem("b"), nameItem("c")},
				Limit:  -1,
			},
			// ada->bob (x2 parallel), bob->cam, ada->cam: 2 triangles; the
			// self-loop dan-dan-dan closes a degenerate one.
			wantRows: 3, wantWCO: true,
		},
		{
			name: "diamond",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}, {Var: "d"}},
				Edges: []EdgePat{
					{Label: "follows", From: 0, To: 1, Dir: model.Out},
					{Label: "follows", From: 0, To: 2, Dir: model.Out},
					{Label: "follows", From: 1, To: 3, Dir: model.Out},
					{Label: "follows", From: 2, To: 3, Dir: model.Out},
				},
				Return: []Item{nameItem("a"), nameItem("b"), nameItem("c"), nameItem("d")},
				Limit:  -1,
			},
			// b and c range over {bob,cam} independently: 4 rows.
			wantRows: 4, wantWCO: true,
		},
		{
			name: "triangle-both-direction",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}},
				Edges: []EdgePat{
					{Label: "knows", From: 0, To: 1, Dir: model.Both},
					{Label: "knows", From: 1, To: 2, Dir: model.Both},
					{Label: "knows", From: 0, To: 2, Dir: model.Both},
				},
				Return: []Item{nameItem("a"), nameItem("b"), nameItem("c")},
				Limit:  -1,
			},
			wantRows: -1, wantWCO: true,
		},
		{
			name: "disconnected-cross-scan",
			spec: MatchSpec{
				Nodes: []NodePat{
					{Var: "p", Label: "Person"},
					{Var: "c", Label: "City"},
				},
				Return: []Item{nameItem("p"), nameItem("c")},
				Limit:  -1,
			},
			wantRows: 4, // 4 persons x 1 city
		},
		{
			name: "varlength-with-cyclic-core",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}, {Var: "d"}},
				Edges: []EdgePat{
					{Label: "knows", From: 0, To: 1, Dir: model.Out},
					{Label: "knows", From: 1, To: 2, Dir: model.Out},
					{Label: "knows", From: 0, To: 2, Dir: model.Out},
					{Label: "follows", From: 2, To: 3, Dir: model.Out, VarLength: true, Min: 1, Max: 2},
				},
				Return: []Item{nameItem("a"), nameItem("b"), nameItem("c"), nameItem("d")},
				Limit:  -1,
			},
			wantRows: -1, wantWCO: true,
		},
		{
			name: "zero-cardinality-label",
			spec: MatchSpec{
				Nodes: []NodePat{
					{Var: "g", Label: "Ghost"},
					{Var: "b"},
				},
				Edges:  []EdgePat{{From: 0, To: 1, Dir: model.Out}},
				Return: []Item{nameItem("g"), nameItem("b")},
				Limit:  -1,
			},
			wantRows: 0, wantEmpty: true,
		},
		{
			name: "distinct-through-reordered-tree",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
				Edges: []EdgePat{
					{Label: "knows", From: 0, To: 1, Dir: model.Out},
				},
				Return:   []Item{nameItem("b")},
				Distinct: true,
				Limit:    -1,
			},
			wantRows: 3, // bob, cam, dan — parallel edges deduped
		},
		{
			name: "limit-offset-ordered",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
				Edges: []EdgePat{
					{Label: "follows", From: 0, To: 1, Dir: model.Out},
				},
				Return: []Item{nameItem("a"), nameItem("b")},
				OrderBy: []OrderKey{
					{Expr: query.Var{Name: "a"}},
					{Expr: query.Var{Name: "b"}},
				},
				Limit:  2,
				Offset: 1,
			},
			// OrderBy covers every returned column, so Limit/Offset slice
			// the same rows whatever the join order produced.
			wantRows: 2,
		},
		{
			name: "bound-bound-check-multiplicity",
			spec: MatchSpec{
				Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
				Edges: []EdgePat{
					{Label: "knows", From: 0, To: 1, Dir: model.Out},
					{Label: "follows", From: 0, To: 1, Dir: model.Out},
				},
				Return: []Item{nameItem("a"), nameItem("b")},
				Limit:  -1,
			},
			// ada-[knows x2]->bob and ada-[follows]->bob: 2 rows; plus
			// ada-knows->cam & ada-follows->cam: 1 row.
			wantRows: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cols := make([]string, len(tc.spec.Return))
			for i, it := range tc.spec.Return {
				cols[i] = it.Name
			}
			naive, costed, wco := compileAll(t, &tc.spec, st)
			if tc.wantWCO && !strings.Contains(wco.String(), "Intersect") {
				t.Errorf("WCO plan has no Intersect: %s", wco)
			}
			var rendered []string
			for i, op := range []Op{naive, costed, wco} {
				res, err := Collect(op, src, cols)
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				if tc.wantRows >= 0 && len(res.Rows) != tc.wantRows {
					t.Errorf("plan %d: %d rows, want %d\nplan: %s", i, len(res.Rows), tc.wantRows, op)
				}
				if len(tc.spec.OrderBy) > 0 {
					// Ordered results compare positionally.
					var lines []string
					for _, row := range res.Rows {
						var kb []byte
						for _, v := range row {
							kb = v.EncodeKey(kb)
						}
						lines = append(lines, string(kb))
					}
					rendered = append(rendered, strings.Join(lines, "\n"))
				} else {
					rendered = append(rendered, canon(t, res))
				}
			}
			if rendered[0] != rendered[1] || rendered[0] != rendered[2] {
				t.Errorf("planners disagree:\nnaive:\n%s\ncost:\n%s\nwco:\n%s", rendered[0], rendered[1], rendered[2])
			}
		})
	}
}

// TestPlannersAgreeOnEmptyGraph runs the differential on a graph with no
// nodes at all: plans must compile and render empty, not error.
func TestPlannersAgreeOnEmptyGraph(t *testing.T) {
	g := memgraph.New()
	st, err := g.PlanStats()
	if err != nil {
		t.Fatal(err)
	}
	src := UnindexedSource{g}
	spec := MatchSpec{
		Nodes: []NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}},
		Edges: []EdgePat{
			{From: 0, To: 1, Dir: model.Out},
			{From: 1, To: 2, Dir: model.Out},
			{From: 0, To: 2, Dir: model.Out},
		},
		Return: []Item{nameItem("a")},
		Limit:  -1,
	}
	naive, costed, wco := compileAll(t, &spec, st)
	for i, op := range []Op{naive, costed, wco} {
		res, err := Collect(op, src, []string{"a"})
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("plan %d: %d rows on empty graph", i, len(res.Rows))
		}
	}
}

// TestPlannerErrorParity: invalid specs must fail on both planners with the
// same error, never panic, never pass on exactly one side.
func TestPlannerErrorParity(t *testing.T) {
	cases := []struct {
		name string
		spec MatchSpec
	}{
		{"empty", MatchSpec{Limit: -1}},
		{"edge-from-out-of-range", MatchSpec{
			Nodes: []NodePat{{Var: "a"}},
			Edges: []EdgePat{{From: 3, To: 0, Dir: model.Out}},
			Limit: -1,
		}},
		{"edge-to-negative", MatchSpec{
			Nodes: []NodePat{{Var: "a"}},
			Edges: []EdgePat{{From: 0, To: -1, Dir: model.Out}},
			Limit: -1,
		}},
		{"duplicate-node-var", MatchSpec{
			Nodes: []NodePat{{Var: "a"}, {Var: "a"}},
			Limit: -1,
		}},
		{"edge-var-collides-node-var", MatchSpec{
			Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
			Edges: []EdgePat{{Var: "a", From: 0, To: 1, Dir: model.Out}},
			Limit: -1,
		}},
		{"varlength-negative-min", MatchSpec{
			Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
			Edges: []EdgePat{{From: 0, To: 1, Dir: model.Out, VarLength: true, Min: -1, Max: 2}},
			Limit: -1,
		}},
		{"varlength-binds-var", MatchSpec{
			Nodes: []NodePat{{Var: "a"}, {Var: "b"}},
			Edges: []EdgePat{{Var: "e", From: 0, To: 1, Dir: model.Out, VarLength: true, Min: 1, Max: 2}},
			Limit: -1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s1 := tc.spec
			s1.Nodes = append([]NodePat(nil), tc.spec.Nodes...)
			s1.Edges = append([]EdgePat(nil), tc.spec.Edges...)
			_, err1 := Compile(&s1)
			s2 := tc.spec
			s2.Nodes = append([]NodePat(nil), tc.spec.Nodes...)
			s2.Edges = append([]EdgePat(nil), tc.spec.Edges...)
			_, _, err2 := Planner{WCO: true}.Compile(&s2)
			if err1 == nil || err2 == nil {
				t.Fatalf("want errors from both planners, got %v / %v", err1, err2)
			}
			if err1.Error() != err2.Error() {
				t.Errorf("error shapes differ: %q vs %q", err1, err2)
			}
		})
	}
}

// TestIntersectExpandMultiplicity checks the run-length semantics directly:
// a common neighbor reached through m and n parallel edges must yield m*n
// rows, exactly like the stacked-Expand equivalent.
func TestIntersectExpandMultiplicity(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("X", nil)
	b, _ := g.AddNode("X", nil)
	c, _ := g.AddNode("X", nil)
	// a->c twice, b->c three times.
	for i := 0; i < 2; i++ {
		if _, err := g.AddEdge("e", a, c, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge("e", b, c, nil); err != nil {
			t.Fatal(err)
		}
	}
	src := UnindexedSource{g}
	// Bind a and b as a cross-scan of all node pairs, then intersect.
	op := &IntersectExpand{
		Child: &NodeScan{Child: &NodeScan{Var: "a"}, Var: "b"},
		Inputs: []IntersectInput{
			{FromVar: "a", Label: "e", Dir: model.Out},
			{FromVar: "b", Label: "e", Dir: model.Out},
		},
		ToVar: "c",
	}
	rows := runAll(t, op, src)
	// For (a,b)=(a,b): 2*3=6; (a,a): 2*2=4; (b,b): 3*3=9; (b,a): 3*2=6.
	// c has no out-edges, so pairs involving c contribute 0.
	if len(rows) != 25 {
		t.Fatalf("intersect rows = %d, want 25", len(rows))
	}
	for _, r := range rows {
		if r["c"].Node.ID != c {
			t.Fatalf("bound wrong node %v", r["c"].Node.ID)
		}
	}
}

// TestIntersectExpandMatchesExpandChain is the operator-level differential:
// on the web fixture, intersecting must equal expanding then checking.
func TestIntersectExpandMatchesExpandChain(t *testing.T) {
	src, _ := web(t)
	base := &NodeScan{Child: &NodeScan{Var: "a"}, Var: "b"}
	chain := &Expand{
		Child: &Expand{
			Child:   base,
			FromVar: "a", ToVar: "c", Label: "knows", Dir: model.Out,
		},
		FromVar: "b", ToVar: "c", Label: "knows", Dir: model.Out,
	}
	isect := &IntersectExpand{
		Child: base,
		Inputs: []IntersectInput{
			{FromVar: "a", Label: "knows", Dir: model.Out},
			{FromVar: "b", Label: "knows", Dir: model.Out},
		},
		ToVar: "c",
	}
	render := func(op Op) string {
		rows := runAll(t, op, src)
		lines := make([]string, len(rows))
		for i, r := range rows {
			lines[i] = fmt.Sprintf("%d|%d|%d", r["a"].Node.ID, r["b"].Node.ID, r["c"].Node.ID)
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if a, b := render(chain), render(isect); a != b {
		t.Errorf("chain and intersect disagree:\nchain:\n%s\nintersect:\n%s", a, b)
	}
}

func TestIntersectExpandTooFewInputs(t *testing.T) {
	src, _ := web(t)
	op := &IntersectExpand{
		Child:  &NodeScan{Var: "a"},
		Inputs: []IntersectInput{{FromVar: "a", Label: "knows", Dir: model.Out}},
		ToVar:  "c",
	}
	if err := op.Run(src, func(query.Row) error { return nil }); err == nil {
		t.Error("single-input intersect should error")
	}
}

func TestCostClass(t *testing.T) {
	cases := []struct {
		cost float64
		want int
	}{
		{0, 0}, {1, 0}, {9, 0}, {10, 1}, {99, 1}, {1000, 3}, {123456, 5},
	}
	for _, tc := range cases {
		if got := (Estimate{Cost: tc.cost}).CostClass(); got != tc.want {
			t.Errorf("CostClass(%v) = %d, want %d", tc.cost, got, tc.want)
		}
	}
}

// TestCompileForDispatch: sources exposing statistics get the cost-based
// planner; bare sources fall back to naive — and both answer identically.
func TestCompileForDispatch(t *testing.T) {
	g := memgraph.New()
	id1, _ := g.AddNode("A", model.Props("name", "n1"))
	id2, _ := g.AddNode("B", model.Props("name", "n2"))
	if _, err := g.AddEdge("r", id1, id2, nil); err != nil {
		t.Fatal(err)
	}
	spec := func() *MatchSpec {
		return &MatchSpec{
			Nodes:  []NodePat{{Var: "a", Label: "A"}, {Var: "b", Label: "B"}},
			Edges:  []EdgePat{{Label: "r", From: 0, To: 1, Dir: model.Out}},
			Return: []Item{nameItem("a"), nameItem("b")},
			Limit:  -1,
		}
	}
	// statsSource exposes PlanStats; UnindexedSource hides it.
	withStats := statsSource{UnindexedSource{g}, g}
	op1, err := CompileFor(spec(), withStats)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := CompileFor(spec(), UnindexedSource{g})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Collect(op1, withStats, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Collect(op2, UnindexedSource{g}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if canon(t, r1) != canon(t, r2) {
		t.Errorf("dispatch paths disagree: %v vs %v", r1.Rows, r2.Rows)
	}
	if len(r1.Rows) != 1 {
		t.Errorf("rows = %d", len(r1.Rows))
	}
}

// statsSource pairs a plain Source with a stats provider, modelling an
// engine core.
type statsSource struct {
	Source
	p stats.Provider
}

func (s statsSource) PlanStats() (*stats.Stats, error) { return s.p.PlanStats() }
