package plan

import (
	"fmt"

	"gdbm/internal/model"
	"gdbm/internal/query"
)

// ExpandVar is the variable-length counterpart of Expand: it walks between
// Min and Max edges with the given label from FromVar and binds ToVar to
// each distinct reachable node (BFS semantics: one binding per node, at its
// minimum distance). It implements the reachability-inside-the-language
// capability the survey's conclusion asks of a standard graph query
// language; the gql syntax is (a)-[:knows*1..3]->(b).
type ExpandVar struct {
	Child   Op
	FromVar string
	ToVar   string
	Label   string
	Dir     model.Direction
	Min     int
	Max     int // 0 = unbounded
}

// Run implements Op.
func (x *ExpandVar) Run(src Source, emit func(query.Row) error) error {
	if x.Min < 0 {
		return fmt.Errorf("expandvar: negative minimum length")
	}
	return x.Child.Run(src, func(row query.Row) error {
		from, ok := row[x.FromVar]
		if !ok || from.Kind != query.EntryNode {
			return fmt.Errorf("expandvar: %q is not a bound node", x.FromVar)
		}
		bound, toBound := row[x.ToVar]

		send := func(n model.Node) error {
			if toBound {
				if bound.Kind != query.EntryNode || bound.Node.ID != n.ID {
					return nil
				}
			}
			out := row.Clone()
			if !toBound {
				out[x.ToVar] = query.NodeEntry(n)
			}
			return emit(out)
		}

		// BFS by level over edges with the label.
		visited := map[model.NodeID]bool{from.Node.ID: true}
		frontier := []model.Node{from.Node}
		if x.Min == 0 {
			if err := send(from.Node); err != nil {
				return err
			}
		}
		for depth := 1; len(frontier) > 0 && (x.Max == 0 || depth <= x.Max); depth++ {
			var next []model.Node
			for _, cur := range frontier {
				err := src.Neighbors(cur.ID, x.Dir, func(e model.Edge, n model.Node) bool {
					if x.Label != "" && e.Label != x.Label {
						return true
					}
					if visited[n.ID] {
						return true
					}
					visited[n.ID] = true
					next = append(next, n)
					return true
				})
				if err != nil {
					return err
				}
			}
			if depth >= x.Min {
				for _, n := range next {
					if err := send(n); err != nil {
						return err
					}
				}
			}
			frontier = next
		}
		return nil
	})
}

// String implements Op.
func (x *ExpandVar) String() string {
	return fmt.Sprintf("%s -> ExpandVar(%s-[:%s*%d..%d]-%s %s)",
		x.Child, x.FromVar, x.Label, x.Min, x.Max, x.ToVar, x.Dir)
}
