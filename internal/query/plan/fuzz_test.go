package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query"
)

// FuzzCompileMatchSpec decodes arbitrary bytes into a MatchSpec and compiles
// it under both the naive and the cost-based/WCO planner. The contract under
// fuzz: no input panics either planner; a spec rejected by one is rejected by
// the other with the same error text (validation is shared, and a one-sided
// rejection would make plan choice observable); and any spec both accept
// must render byte-identical results on a reference graph. Crashing inputs
// become regression seeds in testdata/fuzz.

// fuzzGraph is the shared reference graph: small enough that the worst
// decoded pattern (5 nodes, cross-products) stays cheap, rich enough to
// reach every operator — three labels, rank properties, a parallel edge
// and a self-loop for multiplicity, triangles for the intersect path.
var fuzzGraph = sync.OnceValue(func() Source {
	g := memgraph.New()
	labels := []string{"person", "place", "thing"}
	elabels := []string{"knows", "near", "owns"}
	var ids []model.NodeID
	for i := 0; i < 8; i++ {
		id, err := g.AddNode(labels[i%3], model.Props("rank", i%4))
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	add := func(label string, a, b int) {
		if _, err := g.AddEdge(label, ids[a], ids[b], nil); err != nil {
			panic(err)
		}
	}
	for j := 0; j < 16; j++ {
		add(elabels[j%3], j%8, (j*3+1)%8)
	}
	add("knows", 0, 1)
	add("knows", 1, 2)
	add("knows", 0, 2)
	add("knows", 0, 1) // parallel
	add("owns", 4, 4)  // self-loop
	return UnindexedSource{g}
})

// decodeMatchSpec deterministically maps a byte stream onto a MatchSpec.
// Out-of-range endpoints, duplicate variables, negative var-length bounds
// and empty patterns are all reachable on purpose: the planners must agree
// on rejecting them, not just on answering the well-formed ones.
func decodeMatchSpec(data []byte) *MatchSpec {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nodeLabels := []string{"", "person", "place", "thing"}
	edgeLabels := []string{"", "knows", "near", "owns"}
	spec := &MatchSpec{Limit: -1}

	nn := int(next() % 6) // 0 = empty pattern (must error on both)
	for i := 0; i < nn; i++ {
		np := NodePat{Label: nodeLabels[int(next())%len(nodeLabels)]}
		switch next() % 8 {
		case 0:
			np.Var = "dup" // collides when drawn twice
		case 1:
			np.Var = "" // auto-named by prepare
		default:
			np.Var = fmt.Sprintf("n%d", i)
		}
		if next()%4 == 0 {
			np.Props = model.Props("rank", int(next())%4)
		}
		spec.Nodes = append(spec.Nodes, np)
	}

	ne := int(next() % 7)
	for j := 0; j < ne; j++ {
		e := EdgePat{
			From:  int(next()%8) - 1, // -1..6: out of range both ways
			To:    int(next()%8) - 1,
			Label: edgeLabels[int(next())%len(edgeLabels)],
			Dir:   []model.Direction{model.Out, model.In, model.Both}[int(next())%3],
		}
		switch next() % 8 {
		case 0:
			e.Var = "dup" // may collide with a node variable
		case 1:
			e.Var = fmt.Sprintf("e%d", j)
		}
		if next()%5 == 0 {
			e.VarLength = true
			e.Min = int(next()%4) - 1 // -1 must error on both
			e.Max = int(next() % 4)
		}
		spec.Edges = append(spec.Edges, e)
	}

	// Projection: rank of every explicitly named node, or count(*).
	if next()%6 == 0 {
		spec.Aggs = []AggItem{{Name: "n", Fn: "count"}}
	} else {
		for _, np := range spec.Nodes {
			if np.Var == "" || np.Var == "dup" {
				continue
			}
			spec.Return = append(spec.Return, Item{
				Name: "c" + np.Var,
				Expr: query.Var{Name: np.Var, Prop: "rank"},
			})
		}
	}
	spec.Distinct = next()%4 == 0
	if next()%4 == 0 {
		spec.Limit = int(next() % 8)
		spec.Offset = int(next() % 4)
		for _, it := range spec.Return {
			spec.OrderBy = append(spec.OrderBy, OrderKey{Expr: query.Var{Name: it.Name}})
		}
	}
	return spec
}

func FuzzCompileMatchSpec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                                  // empty pattern
	f.Add([]byte{3, 1, 2, 0, 1, 2, 0, 2, 3})          // labelled nodes, no edges
	f.Add([]byte{2, 1, 2, 1, 2, 1, 1, 2, 1, 0, 0, 0}) // one edge
	f.Add([]byte{1, 0, 2, 0, 1, 7, 7, 1, 0})          // endpoint out of range
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0})             // duplicate "dup" vars
	f.Add([]byte{3, 0, 2, 0, 1, 2, 0, 2, 2, 3, 1, 0, 1, 0, 0, 2, 1, 1, 0, 0, 3, 2, 1, 0, 0,
		1, 2, 0, 0, 0, 0, 0, 0}) // triangle-ish with modifiers
	f.Add([]byte{2, 1, 2, 1, 3, 1, 1, 2, 1, 0, 5, 0, 2, 3}) // var-length

	src := fuzzGraph()
	f.Fuzz(func(t *testing.T, data []byte) {
		specA := decodeMatchSpec(data)
		specB := decodeMatchSpec(data)

		opA, errA := Compile(specA)
		opB, _, errB := Planner{WCO: true}.Compile(specB)

		if (errA == nil) != (errB == nil) {
			t.Fatalf("one-sided rejection: naive err=%v, cost err=%v", errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("error shape diverged: naive %q, cost %q", errA.Error(), errB.Error())
			}
			return
		}

		var cols []string
		for _, it := range specA.Return {
			cols = append(cols, it.Name)
		}
		for _, ag := range specA.Aggs {
			cols = append(cols, ag.Name)
		}
		resA, errA := Collect(opA, src, cols)
		resB, errB := Collect(opB, src, cols)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("one-sided run failure: naive err=%v, cost err=%v", errA, errB)
		}
		if errA != nil {
			return
		}
		ordered := len(specA.OrderBy) > 0
		if a, b := fuzzRender(resA, ordered), fuzzRender(resB, ordered); a != b {
			t.Fatalf("results diverged\nnaive plan: %s\ncost plan:  %s\nnaive: %q\ncost:  %q", opA, opB, a, b)
		}
	})
}

// fuzzRender canonicalizes a result like the differential harness: EncodeKey
// rows, sorted unless an OrderBy fixed the order.
func fuzzRender(res *Result, ordered bool) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var kb []byte
		for _, v := range row {
			kb = v.EncodeKey(kb)
			kb = append(kb, '|')
		}
		lines[i] = string(kb)
	}
	if !ordered {
		sort.Strings(lines)
	}
	return strings.Join(lines, "\n")
}
