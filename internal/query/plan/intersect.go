package plan

import (
	"fmt"
	"sort"
	"strings"

	"gdbm/internal/model"
	"gdbm/internal/query"
)

// IntersectInput is one adjacency list feeding a multiway intersection:
// the neighbors of the node bound to FromVar, in direction Dir, through
// edges carrying Label ("" = any).
type IntersectInput struct {
	FromVar string
	Label   string
	Dir     model.Direction
}

// IntersectExpand is the worst-case-optimal join operator: for each input
// row it intersects the sorted neighbor-ID lists of two or more bound
// nodes and binds ToVar to every node present in all of them. It answers
// exactly what the equivalent Expand chain answers — including row
// multiplicity: the lists keep one entry per parallel edge, so a common
// neighbor reached by m and n parallel edges yields m×n rows, just as two
// stacked Expands would. The win is the work bound: an Expand chain
// enumerates the full fanout of the first edge before filtering, while the
// leapfrog merge touches each list at most once per emitted binding
// (O(min-list × log) per row), which on cyclic patterns — triangles,
// diamonds — is the difference between quadratic and near-output-linear.
type IntersectExpand struct {
	Child  Op
	Inputs []IntersectInput
	ToVar  string
}

// neighborRuns is one run-length-encoded sorted adjacency list: ids are
// strictly ascending, counts[i] is how many parallel edges reach ids[i].
type neighborRuns struct {
	ids    []model.NodeID
	counts []int
}

// memoCap bounds the per-Run adjacency memo. Beyond it, lists are
// re-fetched rather than cached — correctness is unaffected, the memo is
// purely a de-duplication of fetch work across input rows.
const memoCap = 4096

type adjKey struct {
	id    model.NodeID
	dir   model.Direction
	label string
}

// Run implements Op.
func (x *IntersectExpand) Run(src Source, emit func(query.Row) error) error {
	if len(x.Inputs) < 2 {
		return fmt.Errorf("intersect: need at least 2 inputs, have %d", len(x.Inputs))
	}
	memo := make(map[adjKey]neighborRuns)
	fetch := func(id model.NodeID, dir model.Direction, label string) (neighborRuns, error) {
		key := adjKey{id: id, dir: dir, label: label}
		if r, ok := memo[key]; ok {
			return r, nil
		}
		ids, err := SortedNeighborIDs(src, id, dir, label)
		if err != nil {
			return neighborRuns{}, err
		}
		var r neighborRuns
		for _, nid := range ids {
			if n := len(r.ids); n > 0 && r.ids[n-1] == nid {
				r.counts[n-1]++
				continue
			}
			r.ids = append(r.ids, nid)
			r.counts = append(r.counts, 1)
		}
		if len(memo) < memoCap {
			memo[key] = r
		}
		return r, nil
	}

	lists := make([]neighborRuns, len(x.Inputs))
	ptr := make([]int, len(x.Inputs))
	return x.Child.Run(src, func(row query.Row) error {
		for i, in := range x.Inputs {
			from, ok := row[in.FromVar]
			if !ok || from.Kind != query.EntryNode {
				return fmt.Errorf("intersect: %q is not a bound node", in.FromVar)
			}
			r, err := fetch(from.Node.ID, in.Dir, in.Label)
			if err != nil {
				return err
			}
			if len(r.ids) == 0 {
				return nil
			}
			lists[i] = r
			ptr[i] = 0
		}
		// Leapfrog: advance every list to the current maximum head; when
		// all heads agree, that ID is in the intersection.
		for {
			var hi model.NodeID
			for i := range lists {
				if ptr[i] >= len(lists[i].ids) {
					return nil
				}
				if id := lists[i].ids[ptr[i]]; id > hi {
					hi = id
				}
			}
			aligned := true
			for i := range lists {
				if lists[i].ids[ptr[i]] == hi {
					continue
				}
				rest := lists[i].ids[ptr[i]:]
				ptr[i] += sort.Search(len(rest), func(j int) bool { return rest[j] >= hi })
				if ptr[i] >= len(lists[i].ids) {
					return nil
				}
				if lists[i].ids[ptr[i]] != hi {
					aligned = false // overshot: hi grew, realign
				}
			}
			if !aligned {
				continue
			}
			mult := 1
			for i := range lists {
				mult *= lists[i].counts[ptr[i]]
				ptr[i]++
			}
			n, err := src.Node(hi)
			if err != nil {
				return err
			}
			for k := 0; k < mult; k++ {
				out := row.Clone()
				out[x.ToVar] = query.NodeEntry(n)
				if err := emit(out); err != nil {
					return err
				}
			}
		}
	})
}

// String implements Op.
func (x *IntersectExpand) String() string {
	parts := make([]string, len(x.Inputs))
	for i, in := range x.Inputs {
		parts[i] = fmt.Sprintf("%s-[:%s]%s", in.FromVar, in.Label, in.Dir)
	}
	return fmt.Sprintf("%s -> Intersect(%s => %s)", x.Child, strings.Join(parts, " ∩ "), x.ToVar)
}

// sortNodeIDs sorts ids ascending (duplicates preserved).
func sortNodeIDs(ids []model.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
