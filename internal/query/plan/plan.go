// Package plan contains the logical query representation, the planner and
// the physical operators shared by the three query-language front-ends. A
// parsed query becomes a MatchSpec (graph pattern + predicate + projection);
// the planner compiles it into a tree of push-based operators that run
// against any engine exposing the Source interface.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"gdbm/internal/model"
	"gdbm/internal/query"
)

// Source is the engine surface the executor needs: structural reads plus an
// optional index-accelerated node lookup.
type Source interface {
	model.Graph
	// IndexedNodes streams nodes with the given label ("" = any) and, if
	// prop is non-empty, with prop equal to v, using a secondary index.
	// handled reports whether an index served the request; when false the
	// executor falls back to a full scan.
	IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (handled bool, err error)
}

// UnindexedSource adapts a bare model.Graph into a Source with no indexes.
type UnindexedSource struct{ model.Graph }

// IndexedNodes implements Source; it never handles the request.
func (UnindexedSource) IndexedNodes(string, string, model.Value, func(model.Node) bool) (bool, error) {
	return false, nil
}

// Op is a push-based physical operator: it streams rows to emit. Returning
// a non-nil error from emit aborts execution with that error.
type Op interface {
	Run(src Source, emit func(query.Row) error) error
	String() string
}

// errStop signals deliberate early termination (e.g. Limit reached).
var errStop = fmt.Errorf("plan: stop")

// --- NodeScan ---

// NodeScan binds Var to every node matching Label and PropEq. With a Child,
// it expands each input row (cartesian semantics); without, it is a leaf.
type NodeScan struct {
	Child  Op // may be nil
	Var    string
	Label  string
	PropEq model.Properties // all must match
}

// Run implements Op.
func (s *NodeScan) Run(src Source, emit func(query.Row) error) error {
	scanInto := func(base query.Row) error {
		send := func(n model.Node) error {
			if s.Label != "" && n.Label != s.Label {
				return nil
			}
			for k, v := range s.PropEq {
				if !n.Props.Get(k).Equal(v) {
					return nil
				}
			}
			row := base.Clone()
			row[s.Var] = query.NodeEntry(n)
			return emit(row)
		}
		// Try one indexed property first.
		for k, v := range s.PropEq {
			var innerErr error
			handled, err := src.IndexedNodes(s.Label, k, v, func(n model.Node) bool {
				if e := send(n); e != nil {
					innerErr = e
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if handled {
				return innerErr
			}
			break
		}
		// Label-only index.
		if s.Label != "" {
			var innerErr error
			handled, err := src.IndexedNodes(s.Label, "", model.Null(), func(n model.Node) bool {
				if e := send(n); e != nil {
					innerErr = e
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if handled {
				return innerErr
			}
		}
		var innerErr error
		err := src.Nodes(func(n model.Node) bool {
			if e := send(n); e != nil {
				innerErr = e
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return innerErr
	}
	if s.Child == nil {
		return scanInto(query.Row{})
	}
	return s.Child.Run(src, scanInto)
}

// String implements Op.
func (s *NodeScan) String() string {
	out := fmt.Sprintf("NodeScan(%s:%s %v)", s.Var, s.Label, s.PropEq)
	if s.Child != nil {
		out = s.Child.String() + " -> " + out
	}
	return out
}

// --- Expand ---

// Expand walks edges from the node bound to FromVar. If ToVar is unbound it
// binds the far node; if bound, it checks connectivity (join). EdgeVar may
// be empty.
type Expand struct {
	Child   Op
	FromVar string
	EdgeVar string
	ToVar   string
	Label   string
	Dir     model.Direction
}

// Run implements Op.
func (x *Expand) Run(src Source, emit func(query.Row) error) error {
	return x.Child.Run(src, func(row query.Row) error {
		from, ok := row[x.FromVar]
		if !ok || from.Kind != query.EntryNode {
			return fmt.Errorf("expand: %q is not a bound node", x.FromVar)
		}
		bound, toBound := row[x.ToVar]
		var innerErr error
		err := src.Neighbors(from.Node.ID, x.Dir, func(e model.Edge, n model.Node) bool {
			if x.Label != "" && e.Label != x.Label {
				return true
			}
			if toBound {
				if bound.Kind != query.EntryNode || bound.Node.ID != n.ID {
					return true
				}
			}
			out := row.Clone()
			if !toBound {
				out[x.ToVar] = query.NodeEntry(n)
			}
			if x.EdgeVar != "" {
				out[x.EdgeVar] = query.EdgeEntry(e)
			}
			if err := emit(out); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return innerErr
	})
}

// String implements Op.
func (x *Expand) String() string {
	return fmt.Sprintf("%s -> Expand(%s-[%s:%s]-%s %s)", x.Child, x.FromVar, x.EdgeVar, x.Label, x.ToVar, x.Dir)
}

// --- Filter ---

// Filter keeps rows whose condition evaluates to true.
type Filter struct {
	Child Op
	Cond  query.Expr
}

// Run implements Op.
func (f *Filter) Run(src Source, emit func(query.Row) error) error {
	return f.Child.Run(src, func(row query.Row) error {
		v, err := f.Cond.Eval(row)
		if err != nil {
			return err
		}
		if b, ok := v.AsBool(); ok && b {
			return emit(row)
		}
		return nil
	})
}

// String implements Op.
func (f *Filter) String() string { return fmt.Sprintf("%s -> Filter(%s)", f.Child, f.Cond) }

// --- Project ---

// Item is one output column.
type Item struct {
	Name string
	Expr query.Expr
}

// Project reduces rows to named value columns.
type Project struct {
	Child Op
	Items []Item
}

// Run implements Op.
func (p *Project) Run(src Source, emit func(query.Row) error) error {
	return p.Child.Run(src, func(row query.Row) error {
		out := make(query.Row, len(p.Items))
		for _, it := range p.Items {
			v, err := it.Expr.Eval(row)
			if err != nil {
				return err
			}
			out[it.Name] = query.ValueEntry(v)
		}
		return emit(out)
	})
}

// String implements Op.
func (p *Project) String() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.Name
	}
	return fmt.Sprintf("%s -> Project(%s)", p.Child, strings.Join(parts, ", "))
}

// --- Aggregate ---

// AggItem is one aggregate output column.
type AggItem struct {
	Name string
	Fn   string // count sum avg min max
	Arg  query.Expr
}

// Aggregate groups rows by the GroupBy items and folds the aggregates.
type Aggregate struct {
	Child   Op
	GroupBy []Item
	Aggs    []AggItem
}

type aggState struct {
	keyVals []model.Value
	count   int
	sums    []float64
	mins    []model.Value
	maxs    []model.Value
	counts  []int
}

// Run implements Op.
func (a *Aggregate) Run(src Source, emit func(query.Row) error) error {
	groups := map[string]*aggState{}
	var order []string
	err := a.Child.Run(src, func(row query.Row) error {
		keyVals := make([]model.Value, len(a.GroupBy))
		var kb []byte
		for i, g := range a.GroupBy {
			v, err := g.Expr.Eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
			kb = v.EncodeKey(kb)
			kb = append(kb, 0xFF)
		}
		key := string(kb)
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				keyVals: keyVals,
				sums:    make([]float64, len(a.Aggs)),
				mins:    make([]model.Value, len(a.Aggs)),
				maxs:    make([]model.Value, len(a.Aggs)),
				counts:  make([]int, len(a.Aggs)),
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, ag := range a.Aggs {
			var v model.Value
			if ag.Arg != nil {
				var err error
				v, err = ag.Arg.Eval(row)
				if err != nil {
					return err
				}
			}
			if v.IsNull() && strings.ToLower(ag.Fn) != "count" {
				continue
			}
			st.counts[i]++
			if f, ok := v.AsFloat(); ok {
				st.sums[i] += f
			}
			if st.mins[i].IsNull() || v.Compare(st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if st.maxs[i].IsNull() || v.Compare(st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A global aggregate over zero rows still yields one output row.
	if len(order) == 0 && len(a.GroupBy) == 0 {
		st := &aggState{
			sums:   make([]float64, len(a.Aggs)),
			mins:   make([]model.Value, len(a.Aggs)),
			maxs:   make([]model.Value, len(a.Aggs)),
			counts: make([]int, len(a.Aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	for _, key := range order {
		st := groups[key]
		out := query.Row{}
		for i, g := range a.GroupBy {
			out[g.Name] = query.ValueEntry(st.keyVals[i])
		}
		for i, ag := range a.Aggs {
			var v model.Value
			switch strings.ToLower(ag.Fn) {
			case "count":
				v = model.Int(int64(st.count))
			case "sum":
				v = model.Float(st.sums[i])
			case "avg":
				if st.counts[i] == 0 {
					v = model.Null()
				} else {
					v = model.Float(st.sums[i] / float64(st.counts[i]))
				}
			case "min":
				v = st.mins[i]
			case "max":
				v = st.maxs[i]
			default:
				return fmt.Errorf("unknown aggregate %q", ag.Fn)
			}
			out[ag.Name] = query.ValueEntry(v)
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// String implements Op.
func (a *Aggregate) String() string {
	return fmt.Sprintf("%s -> Aggregate(%d aggs)", a.Child, len(a.Aggs))
}

// --- OrderBy / Limit / Distinct ---

// OrderKey is one sort key.
type OrderKey struct {
	Expr query.Expr
	Desc bool
}

// OrderBy materializes and sorts rows.
type OrderBy struct {
	Child Op
	Keys  []OrderKey
}

// Run implements Op.
func (o *OrderBy) Run(src Source, emit func(query.Row) error) error {
	type sortable struct {
		row  query.Row
		keys []model.Value
	}
	var rows []sortable
	err := o.Child.Run(src, func(row query.Row) error {
		s := sortable{row: row, keys: make([]model.Value, len(o.Keys))}
		for i, k := range o.Keys {
			v, err := k.Expr.Eval(row)
			if err != nil {
				return err
			}
			s.keys[i] = v
		}
		rows = append(rows, s)
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range o.Keys {
			c := rows[i].keys[k].Compare(rows[j].keys[k])
			if c == 0 {
				continue
			}
			if o.Keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, s := range rows {
		if err := emit(s.row); err != nil {
			return err
		}
	}
	return nil
}

// String implements Op.
func (o *OrderBy) String() string { return fmt.Sprintf("%s -> OrderBy(%d keys)", o.Child, len(o.Keys)) }

// Limit passes through at most N rows after skipping Offset.
type Limit struct {
	Child  Op
	N      int
	Offset int
}

// Run implements Op.
func (l *Limit) Run(src Source, emit func(query.Row) error) error {
	seen, sent := 0, 0
	err := l.Child.Run(src, func(row query.Row) error {
		seen++
		if seen <= l.Offset {
			return nil
		}
		if l.N >= 0 && sent >= l.N {
			return errStop
		}
		sent++
		if err := emit(row); err != nil {
			return err
		}
		if l.N >= 0 && sent >= l.N {
			return errStop
		}
		return nil
	})
	if err == errStop {
		return nil
	}
	return err
}

// String implements Op.
func (l *Limit) String() string { return fmt.Sprintf("%s -> Limit(%d, %d)", l.Child, l.Offset, l.N) }

// Distinct suppresses duplicate rows (by scalar encoding of all bindings).
type Distinct struct {
	Child Op
	Cols  []string // columns defining identity; empty = all, sorted
}

// Run implements Op.
func (d *Distinct) Run(src Source, emit func(query.Row) error) error {
	seen := map[string]bool{}
	return d.Child.Run(src, func(row query.Row) error {
		cols := d.Cols
		if len(cols) == 0 {
			for k := range row {
				cols = append(cols, k)
			}
			sort.Strings(cols)
		}
		var kb []byte
		for _, c := range cols {
			kb = row[c].Scalar().EncodeKey(kb)
			kb = append(kb, 0xFF)
		}
		key := string(kb)
		if seen[key] {
			return nil
		}
		seen[key] = true
		return emit(row)
	})
}

// String implements Op.
func (d *Distinct) String() string { return d.Child.String() + " -> Distinct" }
