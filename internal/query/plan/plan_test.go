package plan

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query"
)

// people builds: ada(36)-knows->bob(40), bob-knows->cam(25),
// ada-livesIn->zurich, cam-livesIn->zurich.
func people(t *testing.T) (Source, map[string]model.NodeID) {
	t.Helper()
	g := memgraph.New()
	ids := map[string]model.NodeID{}
	add := func(name string, label string, props model.Properties) {
		id, err := g.AddNode(label, props)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add("ada", "Person", model.Props("name", "ada", "age", 36))
	add("bob", "Person", model.Props("name", "bob", "age", 40))
	add("cam", "Person", model.Props("name", "cam", "age", 25))
	add("zurich", "City", model.Props("name", "zurich"))
	g.AddEdge("knows", ids["ada"], ids["bob"], model.Props("since", 2019))
	g.AddEdge("knows", ids["bob"], ids["cam"], nil)
	g.AddEdge("livesIn", ids["ada"], ids["zurich"], nil)
	g.AddEdge("livesIn", ids["cam"], ids["zurich"], nil)
	return UnindexedSource{g}, ids
}

func runAll(t *testing.T, op Op, src Source) []query.Row {
	t.Helper()
	var rows []query.Row
	if err := op.Run(src, func(r query.Row) error {
		rows = append(rows, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestNodeScanLabelAndProps(t *testing.T) {
	src, _ := people(t)
	rows := runAll(t, &NodeScan{Var: "p", Label: "Person"}, src)
	if len(rows) != 3 {
		t.Errorf("Person scan = %d rows", len(rows))
	}
	rows = runAll(t, &NodeScan{Var: "p", Label: "Person", PropEq: model.Props("name", "bob")}, src)
	if len(rows) != 1 {
		t.Errorf("prop scan = %d rows", len(rows))
	}
	rows = runAll(t, &NodeScan{Var: "p"}, src)
	if len(rows) != 4 {
		t.Errorf("full scan = %d rows", len(rows))
	}
}

func TestExpandDirections(t *testing.T) {
	src, ids := people(t)
	base := &NodeScan{Var: "a", Label: "Person", PropEq: model.Props("name", "ada")}
	out := runAll(t, &Expand{Child: base, FromVar: "a", ToVar: "b", Label: "knows", Dir: model.Out}, src)
	if len(out) != 1 || out[0]["b"].Node.ID != ids["bob"] {
		t.Errorf("out expand = %v", out)
	}
	in := runAll(t, &Expand{Child: &NodeScan{Var: "a", PropEq: model.Props("name", "bob")}, FromVar: "a", ToVar: "b", Label: "knows", Dir: model.In}, src)
	if len(in) != 1 || in[0]["b"].Node.ID != ids["ada"] {
		t.Errorf("in expand = %v", in)
	}
	both := runAll(t, &Expand{Child: &NodeScan{Var: "a", PropEq: model.Props("name", "bob")}, FromVar: "a", ToVar: "b", Label: "knows", Dir: model.Both}, src)
	if len(both) != 2 {
		t.Errorf("both expand = %d", len(both))
	}
	// Edge variable binding.
	ev := runAll(t, &Expand{Child: base, FromVar: "a", EdgeVar: "e", ToVar: "b", Label: "knows", Dir: model.Out}, src)
	if ev[0]["e"].Edge.Label != "knows" {
		t.Error("edge var not bound")
	}
}

func TestExpandJoinCheck(t *testing.T) {
	src, _ := people(t)
	// ada knows b AND b livesIn city AND ada livesIn same city? No: bob
	// doesn't live anywhere. Check bound-bound expand as a join.
	op := &Expand{
		Child: &Expand{
			Child: &Expand{
				Child:   &NodeScan{Var: "a", PropEq: model.Props("name", "ada")},
				FromVar: "a", ToVar: "c", Label: "livesIn", Dir: model.Out,
			},
			FromVar: "c", ToVar: "b", Label: "livesIn", Dir: model.In,
		},
		FromVar: "a", ToVar: "b", Label: "knows", Dir: model.Out,
	}
	rows := runAll(t, op, src)
	// a=ada, c=zurich, b in {ada, cam}; ada knows neither of those.
	if len(rows) != 0 {
		t.Errorf("join rows = %d", len(rows))
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src, _ := people(t)
	cond, _ := query.ParseExprString("p.age > 30")
	op := &Limit{
		N: 1,
		Child: &Project{
			Items: []Item{{Name: "name", Expr: query.Var{Name: "p", Prop: "name"}}},
			Child: &Filter{
				Cond:  cond,
				Child: &NodeScan{Var: "p", Label: "Person"},
			},
		},
	}
	rows := runAll(t, op, src)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	name, _ := rows[0]["name"].Value.AsString()
	if name != "ada" && name != "bob" {
		t.Errorf("name = %q", name)
	}
}

func TestOrderByAndOffset(t *testing.T) {
	src, _ := people(t)
	op := &Limit{
		N:      -1,
		Offset: 1,
		Child: &OrderBy{
			Keys: []OrderKey{{Expr: query.Var{Name: "p", Prop: "age"}, Desc: true}},
			Child: &Project{
				Items: []Item{
					{Name: "p", Expr: query.Var{Name: "p", Prop: "name"}},
					{Name: "age", Expr: query.Var{Name: "p", Prop: "age"}},
				},
				Child: &NodeScan{Var: "p", Label: "Person"},
			},
		},
	}
	// Project drops the node binding, so re-order on projected column.
	op.Child.(*OrderBy).Keys = []OrderKey{{Expr: query.Var{Name: "age"}, Desc: true}}
	rows := runAll(t, op, src)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, _ := rows[0]["p"].Value.AsString()
	if first != "ada" { // bob(40) skipped by offset, then ada(36)
		t.Errorf("first after offset = %q", first)
	}
}

func TestAggregateGlobalAndGrouped(t *testing.T) {
	src, _ := people(t)
	// Global count + avg age.
	op := &Aggregate{
		Child: &NodeScan{Var: "p", Label: "Person"},
		Aggs: []AggItem{
			{Name: "n", Fn: "count"},
			{Name: "avgAge", Fn: "avg", Arg: query.Var{Name: "p", Prop: "age"}},
			{Name: "minAge", Fn: "min", Arg: query.Var{Name: "p", Prop: "age"}},
			{Name: "maxAge", Fn: "max", Arg: query.Var{Name: "p", Prop: "age"}},
			{Name: "sumAge", Fn: "sum", Arg: query.Var{Name: "p", Prop: "age"}},
		},
	}
	rows := runAll(t, op, src)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if !r["n"].Value.Equal(model.Int(3)) {
		t.Errorf("count = %v", r["n"].Value)
	}
	if v, _ := r["avgAge"].Value.AsFloat(); v < 33.6 || v > 33.7 {
		t.Errorf("avg = %v", r["avgAge"].Value)
	}
	if !r["minAge"].Value.Equal(model.Int(25)) || !r["maxAge"].Value.Equal(model.Int(40)) {
		t.Errorf("min/max = %v/%v", r["minAge"].Value, r["maxAge"].Value)
	}
	if v, _ := r["sumAge"].Value.AsFloat(); v != 101 {
		t.Errorf("sum = %v", r["sumAge"].Value)
	}
	// Grouped by label over all nodes.
	op2 := &Aggregate{
		Child:   &NodeScan{Var: "p"},
		GroupBy: []Item{{Name: "lbl", Expr: labelExpr{"p"}}},
		Aggs:    []AggItem{{Name: "n", Fn: "count"}},
	}
	rows2 := runAll(t, op2, src)
	if len(rows2) != 2 {
		t.Errorf("groups = %d", len(rows2))
	}
}

// labelExpr extracts a node's label for grouping tests.
type labelExpr struct{ v string }

func (l labelExpr) Eval(r query.Row) (model.Value, error) {
	return model.Str(r[l.v].Node.Label), nil
}
func (l labelExpr) String() string { return "label(" + l.v + ")" }

func TestAggregateEmptyInput(t *testing.T) {
	src, _ := people(t)
	op := &Aggregate{
		Child: &NodeScan{Var: "p", Label: "Ghost"},
		Aggs:  []AggItem{{Name: "n", Fn: "count"}},
	}
	rows := runAll(t, op, src)
	if len(rows) != 1 || !rows[0]["n"].Value.Equal(model.Int(0)) {
		t.Errorf("empty aggregate = %v", rows)
	}
}

func TestDistinctOp(t *testing.T) {
	src, _ := people(t)
	// livesIn targets: zurich twice -> distinct once.
	op := &Distinct{
		Child: &Project{
			Items: []Item{{Name: "city", Expr: query.Var{Name: "c", Prop: "name"}}},
			Child: &Expand{
				Child:   &NodeScan{Var: "p", Label: "Person"},
				FromVar: "p", ToVar: "c", Label: "livesIn", Dir: model.Out,
			},
		},
	}
	rows := runAll(t, op, src)
	if len(rows) != 1 {
		t.Errorf("distinct rows = %d", len(rows))
	}
}

func TestCompileFullPipeline(t *testing.T) {
	src, _ := people(t)
	spec := &MatchSpec{
		Nodes: []NodePat{
			{Var: "a", Label: "Person"},
			{Var: "b", Label: "Person"},
		},
		Edges: []EdgePat{{Label: "knows", From: 0, To: 1, Dir: model.Out}},
		Return: []Item{
			{Name: "an", Expr: query.Var{Name: "a", Prop: "name"}},
			{Name: "bn", Expr: query.Var{Name: "b", Prop: "name"}},
		},
		Limit: -1,
	}
	op, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collect(op, src, []string{"an", "bn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestCompileDisconnectedComponents(t *testing.T) {
	src, _ := people(t)
	spec := &MatchSpec{
		Nodes: []NodePat{
			{Var: "p", Label: "Person"},
			{Var: "c", Label: "City"},
		},
		Return: []Item{{Name: "p", Expr: query.Var{Name: "p", Prop: "name"}}},
		Limit:  -1,
	}
	op, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collect(op, src, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	// Cartesian: 3 persons x 1 city.
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestCompileEmptyPattern(t *testing.T) {
	if _, err := Compile(&MatchSpec{Limit: -1}); err == nil {
		t.Error("empty pattern should fail")
	}
}

func TestCompileStartsAtMostSelective(t *testing.T) {
	spec := &MatchSpec{
		Nodes: []NodePat{
			{Var: "a"},
			{Var: "b", Label: "Person", Props: model.Props("name", "x")},
		},
		Edges: []EdgePat{{From: 0, To: 1, Dir: model.Out}},
		Limit: -1,
	}
	op, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := op.String()
	// The plan should begin with the selective scan of b.
	if want := "NodeScan(b:Person"; len(s) < len(want) || s[:len(want)] != want {
		t.Errorf("plan = %s", s)
	}
}
