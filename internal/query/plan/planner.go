package plan

import (
	"fmt"

	"gdbm/internal/model"
	"gdbm/internal/query"
)

// NodePat is one node in a match pattern.
type NodePat struct {
	Var   string
	Label string
	Props model.Properties
}

// EdgePat is one edge in a match pattern, joining pattern nodes by index.
// VarLength edges match paths of Min..Max edges instead of a single edge
// (Max 0 = unbounded); they cannot bind an edge variable.
type EdgePat struct {
	Var       string
	Label     string
	From, To  int
	Dir       model.Direction // Out means From->To; Both matches either way
	VarLength bool
	Min, Max  int
}

// MatchSpec is the logical form every front-end parses into: a graph
// pattern, an optional predicate, a projection, and result modifiers.
type MatchSpec struct {
	Nodes    []NodePat
	Edges    []EdgePat
	Where    query.Expr
	Return   []Item
	Aggs     []AggItem
	GroupBy  []Item // derived: Return items when Aggs non-empty
	OrderBy  []OrderKey
	Distinct bool
	Limit    int // -1 = none
	Offset   int
}

// Compile turns a MatchSpec into an operator tree. The strategy is greedy
// left-deep: start from the most selective node pattern (one with property
// equalities, then one with a label), expand connected edges, and cross-scan
// disconnected pattern components; Where becomes a Filter, then projection
// and modifiers.
func Compile(spec *MatchSpec) (Op, error) {
	if err := prepare(spec); err != nil {
		return nil, err
	}
	bound := make([]bool, len(spec.Nodes))
	edgeDone := make([]bool, len(spec.Edges))

	start := pickStart(spec.Nodes)
	var root Op = &NodeScan{
		Var:    spec.Nodes[start].Var,
		Label:  spec.Nodes[start].Label,
		PropEq: spec.Nodes[start].Props,
	}
	bound[start] = true

	for {
		progressed := false
		for ei, e := range spec.Edges {
			if edgeDone[ei] {
				continue
			}
			mkExpand := func(fromIdx, toIdx int, dir model.Direction) Op {
				if e.VarLength {
					return &ExpandVar{
						Child:   root,
						FromVar: spec.Nodes[fromIdx].Var,
						ToVar:   spec.Nodes[toIdx].Var,
						Label:   e.Label,
						Dir:     dir,
						Min:     e.Min,
						Max:     e.Max,
					}
				}
				return &Expand{
					Child:   root,
					FromVar: spec.Nodes[fromIdx].Var,
					EdgeVar: e.Var,
					ToVar:   spec.Nodes[toIdx].Var,
					Label:   e.Label,
					Dir:     dir,
				}
			}
			switch {
			case bound[e.From] && bound[e.To]:
				// Connectivity check between two bound nodes.
				root = mkExpand(e.From, e.To, e.Dir)
			case bound[e.From]:
				root = mkExpand(e.From, e.To, e.Dir)
				root = constrainNode(root, spec.Nodes[e.To])
				bound[e.To] = true
			case bound[e.To]:
				root = mkExpand(e.To, e.From, e.Dir.Reverse())
				root = constrainNode(root, spec.Nodes[e.From])
				bound[e.From] = true
			default:
				continue
			}
			edgeDone[ei] = true
			progressed = true
		}
		if allTrue(edgeDone) && allTrue(bound) {
			break
		}
		if !progressed {
			// Disconnected component: cross-scan the next selective
			// unbound node.
			next := -1
			for i := range spec.Nodes {
				if !bound[i] {
					if next == -1 || selectivity(spec.Nodes[i]) > selectivity(spec.Nodes[next]) {
						next = i
					}
				}
			}
			if next == -1 {
				break
			}
			root = &NodeScan{
				Child:  root,
				Var:    spec.Nodes[next].Var,
				Label:  spec.Nodes[next].Label,
				PropEq: spec.Nodes[next].Props,
			}
			bound[next] = true
		}
	}

	return applyModifiers(root, spec), nil
}

// prepare normalizes and validates a MatchSpec in place: anonymous node
// patterns receive synthetic variables, then the pattern is checked for the
// shapes no planner can execute. Both planners share it, so an invalid spec
// fails identically — same error, no panics — regardless of which planner a
// front-end selects. prepare is idempotent.
func prepare(spec *MatchSpec) error {
	if len(spec.Nodes) == 0 {
		return fmt.Errorf("plan: empty match pattern")
	}
	for i, n := range spec.Nodes {
		if n.Var == "" {
			spec.Nodes[i].Var = fmt.Sprintf("_n%d", i)
		}
	}
	vars := make(map[string]bool, len(spec.Nodes))
	for _, n := range spec.Nodes {
		if vars[n.Var] {
			return fmt.Errorf("plan: duplicate variable %q", n.Var)
		}
		vars[n.Var] = true
	}
	for ei, e := range spec.Edges {
		if e.From < 0 || e.From >= len(spec.Nodes) || e.To < 0 || e.To >= len(spec.Nodes) {
			return fmt.Errorf("plan: edge %d endpoint out of range", ei)
		}
		if e.VarLength {
			if e.Var != "" {
				return fmt.Errorf("plan: var-length edge %d cannot bind a variable", ei)
			}
			if e.Min < 0 {
				return fmt.Errorf("plan: edge %d has negative minimum length", ei)
			}
			continue
		}
		if e.Var == "" {
			continue
		}
		if vars[e.Var] {
			return fmt.Errorf("plan: duplicate variable %q", e.Var)
		}
		vars[e.Var] = true
	}
	return nil
}

// applyModifiers wraps the pattern-matching tree with the spec's predicate,
// projection and result modifiers, in the fixed order every planner shares:
// Filter, Aggregate/Project, Distinct, OrderBy, Limit/Offset. Keeping this
// in one place is what makes reordered plans answer-equivalent — only the
// pattern subtree differs between planners.
func applyModifiers(root Op, spec *MatchSpec) Op {
	if spec.Where != nil {
		root = &Filter{Child: root, Cond: spec.Where}
	}
	if len(spec.Aggs) > 0 {
		root = &Aggregate{Child: root, GroupBy: spec.GroupBy, Aggs: spec.Aggs}
	} else if len(spec.Return) > 0 {
		root = &Project{Child: root, Items: spec.Return}
	}
	if spec.Distinct {
		root = &Distinct{Child: root}
	}
	if len(spec.OrderBy) > 0 {
		root = &OrderBy{Child: root, Keys: spec.OrderBy}
	}
	if spec.Limit >= 0 || spec.Offset > 0 {
		n := spec.Limit
		if n < 0 {
			n = -1
		}
		root = &Limit{Child: root, N: n, Offset: spec.Offset}
	}
	return root
}

func constrainNode(child Op, n NodePat) Op {
	if n.Label == "" && len(n.Props) == 0 {
		return child
	}
	var cond query.Expr
	add := func(e query.Expr) {
		if cond == nil {
			cond = e
		} else {
			cond = query.BinOp{Op: "and", L: cond, R: e}
		}
	}
	for k, v := range n.Props {
		add(query.BinOp{Op: "=", L: query.Var{Name: n.Var, Prop: k}, R: query.Lit{V: v}})
	}
	if n.Label != "" {
		add(labelIs{v: n.Var, label: n.Label})
	}
	return &Filter{Child: child, Cond: cond}
}

// labelIs tests a bound node's label; labels are not properties, so this is
// a dedicated expression.
type labelIs struct {
	v     string
	label string
}

// Eval implements query.Expr.
func (l labelIs) Eval(r query.Row) (model.Value, error) {
	e, ok := r[l.v]
	if !ok {
		return model.Null(), fmt.Errorf("unbound variable %q", l.v)
	}
	switch e.Kind {
	case query.EntryNode:
		return model.Bool(e.Node.Label == l.label), nil
	case query.EntryEdge:
		return model.Bool(e.Edge.Label == l.label), nil
	}
	return model.Bool(false), nil
}

// String implements query.Expr.
func (l labelIs) String() string { return fmt.Sprintf("label(%s)=%s", l.v, l.label) }

func pickStart(nodes []NodePat) int {
	best, bestScore := 0, -1
	for i, n := range nodes {
		if s := selectivity(n); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func selectivity(n NodePat) int {
	s := 0
	if len(n.Props) > 0 {
		s += 2 + len(n.Props)
	}
	if n.Label != "" {
		s++
	}
	return s
}

func allTrue(b []bool) bool {
	for _, v := range b {
		if !v {
			return false
		}
	}
	return true
}

// Result is a materialized query result table.
type Result struct {
	Cols []string
	Rows [][]model.Value
}

// Clone returns an independent copy (values themselves are immutable).
// Result caches store and serve clones so callers may mutate what they get.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	c := &Result{Cols: append([]string(nil), r.Cols...)}
	if r.Rows != nil {
		c.Rows = make([][]model.Value, len(r.Rows))
		for i, row := range r.Rows {
			c.Rows[i] = append([]model.Value(nil), row...)
		}
	}
	return c
}

// Collect runs an operator tree and materializes the output rows under the
// given column order. It is Stream into an in-memory sink, so collected and
// streamed executions share one row-production path.
func Collect(op Op, src Source, cols []string) (*Result, error) {
	var c collector
	if err := Stream(op, src, cols, &c); err != nil {
		return nil, err
	}
	return &c.res, nil
}
