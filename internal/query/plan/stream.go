package plan

import (
	"gdbm/internal/model"
	"gdbm/internal/query"
)

// Sink receives a query result incrementally: Cols exactly once, then Row
// for every output row in execution order. Either call may return an error
// to stop production — the executor propagates it unchanged, so a sink can
// abort a stream (client disconnect, chunk-budget exhausted) without the
// operator tree finishing its scan. Implementations must not retain the
// slices they are handed past the call.
type Sink interface {
	Cols(cols []string) error
	Row(vals []model.Value) error
}

// Stream runs an operator tree and emits the output rows into sink as they
// are produced, under the given column order. It is the incremental twin of
// Collect: both share the same row-projection code, so a streamed execution
// renders byte-identically to a collected one.
func Stream(op Op, src Source, cols []string, sink Sink) error {
	if err := sink.Cols(cols); err != nil {
		return err
	}
	return op.Run(src, func(row query.Row) error {
		out := make([]model.Value, len(cols))
		for i, c := range cols {
			out[i] = row[c].Scalar()
		}
		return sink.Row(out)
	})
}

// Replay feeds an already-materialized result into sink. It adapts cached
// or write-statement results (which exist whole before the first byte can
// be sent) to the streaming delivery path.
func Replay(res *Result, sink Sink) error {
	if err := sink.Cols(res.Cols); err != nil {
		return err
	}
	for _, row := range res.Rows {
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	return nil
}

// collector materializes a stream back into a Result; Collect uses it so
// the collected and streamed paths cannot drift.
type collector struct{ res Result }

func (c *collector) Cols(cols []string) error {
	c.res.Cols = cols
	return nil
}

func (c *collector) Row(vals []model.Value) error {
	c.res.Rows = append(c.res.Rows, vals)
	return nil
}
