package query

import (
	"strings"
	"testing"

	"gdbm/internal/model"
)

func TestLexerBasics(t *testing.T) {
	l := NewLexer(`MATCH (a:Person {name: 'ada', age: 36}) WHERE a.age >= 30 RETURN a.name`)
	var kinds []TokKind
	var texts []string
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "MATCH ( a : Person { name : ada , age : 36 } )") {
		t.Errorf("tokens = %q", joined)
	}
	// >= lexed as one token.
	found := false
	for i, tx := range texts {
		if tx == ">=" && kinds[i] == TokPunct {
			found = true
		}
	}
	if !found {
		t.Error(">= not lexed as multipunct")
	}
}

func TestLexerStringsAndEscapes(t *testing.T) {
	l := NewLexer(`"hello\nworld" 'it\'s'`)
	t1, _ := l.Next()
	if t1.Kind != TokString || t1.Text != "hello\nworld" {
		t.Errorf("t1 = %+v", t1)
	}
	t2, _ := l.Next()
	if t2.Kind != TokString || t2.Text != "it's" {
		t.Errorf("t2 = %+v", t2)
	}
	// Unterminated.
	l2 := NewLexer(`"abc`)
	if _, err := l2.Next(); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexerNumbers(t *testing.T) {
	l := NewLexer(`42 3.25 7.`)
	t1, _ := l.Next()
	if t1.Kind != TokNumber || t1.Text != "42" {
		t.Errorf("t1 = %+v", t1)
	}
	t2, _ := l.Next()
	if t2.Kind != TokNumber || t2.Text != "3.25" {
		t.Errorf("t2 = %+v", t2)
	}
	// "7." lexes as number 7 then punct '.'
	t3, _ := l.Next()
	t4, _ := l.Next()
	if t3.Text != "7" || t4.Text != "." {
		t.Errorf("t3=%+v t4=%+v", t3, t4)
	}
}

func TestLexerIRIMode(t *testing.T) {
	l := NewLexer(`?x <http://example.org/name> "ada"`)
	l.IRIMode = true
	t1, _ := l.Next()
	if t1.Kind != TokVar || t1.Text != "x" {
		t.Errorf("t1 = %+v", t1)
	}
	t2, _ := l.Next()
	if t2.Kind != TokIRI || t2.Text != "http://example.org/name" {
		t.Errorf("t2 = %+v", t2)
	}
	// Errors: empty var, unterminated IRI.
	l3 := NewLexer(`? x`)
	l3.IRIMode = true
	if _, err := l3.Next(); err == nil {
		t.Error("empty var should fail")
	}
	l4 := NewLexer(`<abc`)
	l4.IRIMode = true
	if _, err := l4.Next(); err == nil {
		t.Error("unterminated IRI should fail")
	}
}

func TestAcceptExpectHelpers(t *testing.T) {
	l := NewLexer(`RETURN ( )`)
	if !l.AcceptIdent("return") {
		t.Error("case-insensitive accept failed")
	}
	if err := l.ExpectPunct("("); err != nil {
		t.Error(err)
	}
	if err := l.ExpectPunct("{"); err == nil {
		t.Error("wrong punct should fail")
	}
}

func evalStr(t *testing.T, expr string, row Row) model.Value {
	t.Helper()
	e, err := ParseExprString(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	cases := map[string]model.Value{
		"1 + 2":             model.Int(3),
		"10 - 4":            model.Int(6),
		"3 * 4":             model.Int(12),
		"10 / 4":            model.Float(2.5),
		"1 + 2 * 3":         model.Int(7),
		"(1 + 2) * 3":       model.Int(9),
		"-5 + 2":            model.Int(-3),
		"1.5 + 1":           model.Float(2.5),
		"'a' + 'b'":         model.Str("ab"),
		"'n=' + 42":         model.Str("n=42"),
		"abs(-7)":           model.Int(7),
		"abs(-1.5)":         model.Float(1.5),
		"length('hello')":   model.Int(5),
		"lower('ABC')":      model.Str("abc"),
		"upper('abc')":      model.Str("ABC"),
		"coalesce(null, 3)": model.Int(3),
	}
	for expr, want := range cases {
		if got := evalStr(t, expr, Row{}); !got.Equal(want) {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestExprComparisonsAndBool(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":                   true,
		"2 <= 2":                  true,
		"3 > 4":                   false,
		"4 >= 4":                  true,
		"1 = 1":                   true,
		"1 <> 2":                  true,
		"1 != 1":                  false,
		"'a' < 'b'":               true,
		"true and false":          false,
		"true or false":           true,
		"not false":               true,
		"1 < 2 and 2 < 3":         true,
		"1 > 2 or 3 > 2":          true,
		"not (1 = 2)":             true,
		"true and true and false": false,
	}
	for expr, want := range cases {
		v := evalStr(t, expr, Row{})
		if b, ok := v.AsBool(); !ok || b != want {
			t.Errorf("%s = %v, want %v", expr, v, want)
		}
	}
}

func TestExprDivisionByZero(t *testing.T) {
	e, _ := ParseExprString("1 / 0")
	if _, err := e.Eval(Row{}); err == nil {
		t.Error("division by zero should fail")
	}
}

func TestExprVarsAndProps(t *testing.T) {
	row := Row{
		"a": NodeEntry(model.Node{ID: 7, Label: "P", Props: model.Props("name", "ada", "age", 36)}),
		"e": EdgeEntry(model.Edge{ID: 3, Label: "knows", Props: model.Props("w", 0.5)}),
		"v": ValueEntry(model.Int(5)),
	}
	if got := evalStr(t, "a.name", row); !got.Equal(model.Str("ada")) {
		t.Errorf("a.name = %v", got)
	}
	if got := evalStr(t, "e.w", row); !got.Equal(model.Float(0.5)) {
		t.Errorf("e.w = %v", got)
	}
	if got := evalStr(t, "v + 1", row); !got.Equal(model.Int(6)) {
		t.Errorf("v+1 = %v", got)
	}
	// Nodes reduce to their IDs.
	if got := evalStr(t, "id(a)", row); !got.Equal(model.Int(7)) {
		t.Errorf("id(a) = %v", got)
	}
	// Missing prop is null.
	if got := evalStr(t, "a.missing", row); !got.IsNull() {
		t.Errorf("a.missing = %v", got)
	}
	// Unbound var errors.
	e, _ := ParseExprString("zz")
	if _, err := e.Eval(row); err == nil {
		t.Error("unbound var should fail")
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, bad := range []string{"", "1 +", "(1", "a.", "1 2", "foo(1,", "! "} {
		if _, err := ParseExprString(bad); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}

func TestExprTypeErrors(t *testing.T) {
	for _, bad := range []string{"1 and true", "true + false and true", "not 5", "-'a'", "'a' * 2"} {
		e, err := ParseExprString(bad)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := e.Eval(Row{}); err == nil {
			t.Errorf("eval %q should fail", bad)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e, _ := ParseExprString("a.x + 1 > 2 and not b")
	s := e.String()
	if !strings.Contains(s, "a.x") || !strings.Contains(s, "not") {
		t.Errorf("String() = %q", s)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{"a": ValueEntry(model.Int(1))}
	c := r.Clone()
	c["b"] = ValueEntry(model.Int(2))
	if _, ok := r["b"]; ok {
		t.Error("Clone should be independent")
	}
}

func TestEntryScalar(t *testing.T) {
	if v := (Entry{}).Scalar(); !v.IsNull() {
		t.Error("zero entry scalar should be null")
	}
	if v := NodeEntry(model.Node{ID: 4}).Scalar(); !v.Equal(model.Int(4)) {
		t.Error("node scalar should be its ID")
	}
	if v := EdgeEntry(model.Edge{ID: 9}).Scalar(); !v.Equal(model.Int(9)) {
		t.Error("edge scalar should be its ID")
	}
	if v := ValueEntry(model.Str("x")).Prop("anything"); !v.IsNull() {
		t.Error("value entry prop should be null")
	}
}
