// Package sparqlish implements the SPARQL-like query surface of the
// AllegroGraph-archetype triple engine. The survey marks that engine's
// query language as *partial* support because SPARQL matches triple
// patterns rather than arbitrary graph structure; this front-end has the
// same shape: basic graph patterns with FILTER, DISTINCT and LIMIT.
//
//	SELECT ?x ?name
//	WHERE {
//	  ?x <type> "person" .
//	  ?x <name> ?name .
//	  FILTER (?name != "ada")
//	}
//	ORDER BY ?name LIMIT 10
//
// Subjects are resources; predicates are IRIs (edge labels); objects are
// resources (variables / IRIs) or literals. Literal objects match node
// values: the triple engine stores literals as value nodes.
package sparqlish

import (
	"context"
	"fmt"
	"strings"

	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query"
	"gdbm/internal/query/plan"
)

// Query is a parsed SELECT query.
type Query struct {
	Vars     []string
	Spec     plan.MatchSpec
	Distinct bool
}

// TriplePattern is one subject-predicate-object pattern.
type TriplePattern struct {
	// S and O are variable names (no '?') or constant terms; constants are
	// IRIs or literals.
	SVar, OVar string
	SConst     model.Value
	OConst     model.Value
	Pred       string // IRI text; "" is not allowed (predicate variables unsupported)
}

// Parse parses a sparqlish SELECT query.
func Parse(input string) (*Query, error) {
	l := query.NewLexer(input)
	l.IRIMode = true
	q := &Query{}
	q.Spec.Limit = -1
	if err := l.ExpectIdent("SELECT"); err != nil {
		return nil, fmt.Errorf("sparqlish: %w", err)
	}
	if l.AcceptIdent("DISTINCT") {
		q.Distinct = true
		q.Spec.Distinct = true
	}
	// Projection: ?a ?b ... or *
	star := false
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == query.TokVar {
			l.Next()
			q.Vars = append(q.Vars, t.Text)
			continue
		}
		if t.Kind == query.TokPunct && t.Text == "*" {
			l.Next()
			star = true
			continue
		}
		break
	}
	if err := l.ExpectIdent("WHERE"); err != nil {
		return nil, fmt.Errorf("sparqlish: %w", err)
	}
	if err := l.ExpectPunct("{"); err != nil {
		return nil, fmt.Errorf("sparqlish: %w", err)
	}
	var patterns []TriplePattern
	varSet := map[string]bool{}
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == query.TokPunct && t.Text == "}" {
			l.Next()
			break
		}
		if t.Kind == query.TokIdent && strings.EqualFold(t.Text, "FILTER") {
			l.Next()
			if err := l.ExpectPunct("("); err != nil {
				return nil, fmt.Errorf("sparqlish: %w", err)
			}
			e, err := query.ParseExpr(l)
			if err != nil {
				return nil, fmt.Errorf("sparqlish filter: %w", err)
			}
			if err := l.ExpectPunct(")"); err != nil {
				return nil, fmt.Errorf("sparqlish: %w", err)
			}
			e = rewriteVarsToValues(e)
			if q.Spec.Where == nil {
				q.Spec.Where = e
			} else {
				q.Spec.Where = query.BinOp{Op: "and", L: q.Spec.Where, R: e}
			}
			l.AcceptPunct(".")
			continue
		}
		tp, err := parseTriple(l, varSet)
		if err != nil {
			return nil, fmt.Errorf("sparqlish: %w", err)
		}
		patterns = append(patterns, tp)
		if !l.AcceptPunct(".") {
			// '.' is a separator; allow it to be omitted before '}'.
			t, err := l.Peek()
			if err != nil {
				return nil, err
			}
			if t.Kind != query.TokPunct || t.Text != "}" {
				return nil, l.Errorf(t.Pos, "expected '.' or '}' after triple pattern")
			}
		}
	}
	// Modifiers.
	for {
		t, err := l.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == query.TokEOF {
			break
		}
		if t.Kind != query.TokIdent {
			return nil, l.Errorf(t.Pos, "unexpected %q", t.Text)
		}
		switch strings.ToUpper(t.Text) {
		case "ORDER":
			l.Next()
			if err := l.ExpectIdent("BY"); err != nil {
				return nil, err
			}
			for {
				ot, err := l.Peek()
				if err != nil {
					return nil, err
				}
				if ot.Kind != query.TokVar {
					break
				}
				l.Next()
				desc := false
				if l.AcceptIdent("DESC") {
					desc = true
				} else {
					l.AcceptIdent("ASC")
				}
				// OrderBy runs after projection, where the variable is
				// already bound to its lexical value.
				q.Spec.OrderBy = append(q.Spec.OrderBy, plan.OrderKey{
					Expr: query.Var{Name: ot.Text}, Desc: desc,
				})
			}
		case "LIMIT":
			l.Next()
			nt, err := l.Next()
			if err != nil {
				return nil, err
			}
			n := 0
			fmt.Sscanf(nt.Text, "%d", &n)
			q.Spec.Limit = n
		case "OFFSET":
			l.Next()
			nt, err := l.Next()
			if err != nil {
				return nil, err
			}
			n := 0
			fmt.Sscanf(nt.Text, "%d", &n)
			q.Spec.Offset = n
		default:
			return nil, l.Errorf(t.Pos, "unexpected keyword %q", t.Text)
		}
	}
	if err := q.compile(patterns, varSet, star); err != nil {
		return nil, err
	}
	return q, nil
}

func parseTriple(l *query.Lexer, varSet map[string]bool) (TriplePattern, error) {
	var tp TriplePattern
	// Subject.
	t, err := l.Next()
	if err != nil {
		return tp, err
	}
	switch t.Kind {
	case query.TokVar:
		tp.SVar = t.Text
		varSet[t.Text] = true
	case query.TokIRI:
		tp.SConst = model.Str(t.Text)
	case query.TokString:
		tp.SConst = model.Str(t.Text)
	default:
		return tp, l.Errorf(t.Pos, "bad triple subject %q", t.Text)
	}
	// Predicate.
	t, err = l.Next()
	if err != nil {
		return tp, err
	}
	switch t.Kind {
	case query.TokIRI, query.TokIdent:
		tp.Pred = t.Text
	default:
		return tp, l.Errorf(t.Pos, "bad triple predicate %q (predicate variables unsupported)", t.Text)
	}
	// Object.
	t, err = l.Next()
	if err != nil {
		return tp, err
	}
	switch t.Kind {
	case query.TokVar:
		tp.OVar = t.Text
		varSet[t.Text] = true
	case query.TokIRI:
		tp.OConst = model.Str(t.Text)
	case query.TokString:
		tp.OConst = model.Str(t.Text)
	case query.TokNumber:
		e, perr := query.ParseExprString(t.Text)
		if perr != nil {
			return tp, perr
		}
		v, _ := e.Eval(query.Row{})
		tp.OConst = v
	default:
		return tp, l.Errorf(t.Pos, "bad triple object %q", t.Text)
	}
	return tp, nil
}

// compile lowers triple patterns onto the shared MatchSpec: every distinct
// term becomes a pattern node; each triple becomes a directed edge labelled
// with the predicate. Constant terms constrain the node's "value" property —
// the triple engine represents every resource/literal as a node with a
// value property.
func (q *Query) compile(patterns []TriplePattern, varSet map[string]bool, star bool) error {
	if len(patterns) == 0 {
		return fmt.Errorf("sparqlish: empty basic graph pattern")
	}
	nodeIdx := map[string]int{}
	addVarNode := func(name string) int {
		if i, ok := nodeIdx[name]; ok {
			return i
		}
		i := len(q.Spec.Nodes)
		q.Spec.Nodes = append(q.Spec.Nodes, plan.NodePat{Var: name})
		nodeIdx[name] = i
		return i
	}
	addConstNode := func(v model.Value) int {
		i := len(q.Spec.Nodes)
		q.Spec.Nodes = append(q.Spec.Nodes, plan.NodePat{
			Var:   fmt.Sprintf("_c%d", i),
			Props: model.Properties{"value": v},
		})
		return i
	}
	for _, tp := range patterns {
		var s, o int
		if tp.SVar != "" {
			s = addVarNode(tp.SVar)
		} else {
			s = addConstNode(tp.SConst)
		}
		if tp.OVar != "" {
			o = addVarNode(tp.OVar)
		} else {
			o = addConstNode(tp.OConst)
		}
		q.Spec.Edges = append(q.Spec.Edges, plan.EdgePat{
			Label: tp.Pred, From: s, To: o, Dir: model.Out,
		})
	}
	if star {
		for v := range varSet {
			q.Vars = append(q.Vars, v)
		}
	}
	if len(q.Vars) == 0 {
		return fmt.Errorf("sparqlish: SELECT needs at least one variable")
	}
	for _, v := range q.Vars {
		if !varSet[v] {
			return fmt.Errorf("sparqlish: projected variable ?%s not bound in WHERE", v)
		}
		// Project the term's lexical value.
		q.Spec.Return = append(q.Spec.Return, plan.Item{
			Name: v, Expr: query.Var{Name: v, Prop: "value"},
		})
	}
	return nil
}

// rewriteVarsToValues turns bare variable references in a FILTER into
// accesses of the bound term's "value" property, so comparisons see the
// lexical value rather than the internal node identifier.
func rewriteVarsToValues(e query.Expr) query.Expr {
	switch x := e.(type) {
	case query.Var:
		if x.Prop == "" {
			return query.Var{Name: x.Name, Prop: "value"}
		}
		return x
	case query.BinOp:
		return query.BinOp{Op: x.Op, L: rewriteVarsToValues(x.L), R: rewriteVarsToValues(x.R)}
	case query.Not:
		return query.Not{E: rewriteVarsToValues(x.E)}
	case query.Neg:
		return query.Neg{E: rewriteVarsToValues(x.E)}
	case query.Call:
		args := make([]query.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteVarsToValues(a)
		}
		return query.Call{Fn: x.Fn, Args: args}
	default:
		return e
	}
}

// Run executes the query against a triple source.
func Run(input string, src plan.Source) (*plan.Result, error) {
	return RunCtx(context.Background(), input, src)
}

// RunCtx is Run with a context. When ctx carries an obs.Trace, parsing and
// execution are recorded as "parse" and "exec" spans; the answer is always
// identical to Run's.
func RunCtx(ctx context.Context, input string, src plan.Source) (*plan.Result, error) {
	tr := obs.FromContext(ctx)
	endParse := tr.StartSpan("parse")
	q, err := Parse(input)
	endParse()
	if err != nil {
		return nil, err
	}
	defer tr.StartSpan("exec")()
	op, err := plan.CompileFor(&q.Spec, src)
	if err != nil {
		return nil, err
	}
	return plan.Collect(op, plan.WithCancel(ctx, src), q.Vars)
}

// RunStreamCtx is RunCtx delivering the result into sink incrementally as
// the operator tree produces rows; the rows and their order are exactly
// RunCtx's.
func RunStreamCtx(ctx context.Context, input string, src plan.Source, sink plan.Sink) error {
	tr := obs.FromContext(ctx)
	endParse := tr.StartSpan("parse")
	q, err := Parse(input)
	endParse()
	if err != nil {
		return err
	}
	defer tr.StartSpan("exec")()
	op, err := plan.CompileFor(&q.Spec, src)
	if err != nil {
		return err
	}
	return plan.Stream(op, plan.WithCancel(ctx, src), q.Vars, sink)
}
