package sparqlish

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// tripleGraph emulates a triple store: nodes carry a "value" property and
// predicates are edge labels — exactly the layout the triple engine uses.
func tripleGraph(t *testing.T) plan.Source {
	t.Helper()
	g := memgraph.New()
	terms := map[string]model.NodeID{}
	term := func(v string) model.NodeID {
		if id, ok := terms[v]; ok {
			return id
		}
		id, _ := g.AddNode("", model.Props("value", v))
		terms[v] = id
		return id
	}
	triples := [][3]string{
		{"ada", "type", "person"},
		{"bob", "type", "person"},
		{"zurich", "type", "city"},
		{"ada", "name", "Ada Lovelace"},
		{"bob", "name", "Bob"},
		{"ada", "knows", "bob"},
		{"ada", "livesIn", "zurich"},
	}
	for _, tr := range triples {
		g.AddEdge(tr[1], term(tr[0]), term(tr[2]), nil)
	}
	return plan.UnindexedSource{Graph: g}
}

func TestBasicBGP(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT ?x WHERE { ?x <type> "person" . }`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinAcrossTriples(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT ?name WHERE { ?x <type> "person" . ?x <name> ?name . ?x <livesIn> "zurich" . }`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "Ada Lovelace" {
		t.Errorf("name = %q", n)
	}
}

func TestFilter(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT ?n WHERE { ?x <type> "person" . ?x <name> ?n . FILTER (?n != "Bob") }`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderLimitDistinct(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT DISTINCT ?n WHERE { ?x <name> ?n . } ORDER BY ?n LIMIT 1`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "Ada Lovelace" {
		t.Errorf("first = %q", n)
	}
}

func TestIRISubject(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT ?o WHERE { <ada> <knows> ?o . }`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if o, _ := res.Rows[0][0].AsString(); o != "bob" {
		t.Errorf("o = %q", o)
	}
}

func TestSelectStar(t *testing.T) {
	src := tripleGraph(t)
	res, err := Run(`SELECT * WHERE { ?s <knows> ?o . }`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Cols) != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		``,
		`SELECT WHERE { ?x <p> ?y . }`,           // no projection
		`SELECT ?x { ?x <p> ?y . }`,              // missing WHERE
		`SELECT ?x WHERE { ?x ?p ?y . }`,         // predicate variable
		`SELECT ?z WHERE { ?x <p> ?y . }`,        // unbound projection
		`SELECT ?x WHERE { }`,                    // empty BGP
		`SELECT ?x WHERE { ?x <p> ?y BAD ?z . }`, // junk
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("parse %q should fail", bad)
		}
	}
}

func TestTrailingDotOptional(t *testing.T) {
	src := tripleGraph(t)
	if _, err := Run(`SELECT ?x WHERE { ?x <type> "person" }`, src); err != nil {
		t.Errorf("trailing dot should be optional: %v", err)
	}
}
