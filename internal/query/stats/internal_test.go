package stats

import (
	"fmt"
	"math"
	"testing"

	"gdbm/internal/model"
)

func TestNilStatsDefaults(t *testing.T) {
	var s *Stats
	if got := s.CountNodes(""); got != defaultNodes {
		t.Errorf("nil CountNodes = %v", got)
	}
	if got := s.CountNodes("person"); got != defaultNodes*defaultLabelSel {
		t.Errorf("nil CountNodes(person) = %v", got)
	}
	if got := s.Fanout("", model.Out); got != defaultFanout {
		t.Errorf("nil Fanout = %v", got)
	}
	if got := s.Fanout("knows", model.Both); math.Abs(got-2*defaultFanout*defaultLabelSel) > 1e-9 {
		t.Errorf("nil Fanout(knows, Both) = %v", got)
	}
	if got := s.PropSelectivity("", "rank"); got != defaultPropSel {
		t.Errorf("nil PropSelectivity = %v", got)
	}
	if _, ok := s.DistinctValues("", "rank"); ok {
		t.Error("nil DistinctValues reported ok")
	}
	if got := s.DegreeP90(); got != defaultFanout {
		t.Errorf("nil DegreeP90 = %v", got)
	}
}

func TestKMVExactBelowK(t *testing.T) {
	m := NewKMV(16)
	for i := 0; i < 10; i++ {
		m.AddValue(model.Int(int64(i % 5)))
	}
	if got := m.Distinct(); got != 5 {
		t.Errorf("Distinct = %v, want 5 exact", got)
	}
}

func TestKMVEstimateAccuracy(t *testing.T) {
	m := NewKMV(256)
	const n = 50000
	for i := 0; i < n; i++ {
		m.AddValue(model.Str(fmt.Sprintf("v%d", i)))
	}
	got := m.Distinct()
	if got < n*0.8 || got > n*1.2 {
		t.Errorf("Distinct = %v, want within 20%% of %d", got, n)
	}
	// Re-adding the same values must not move the estimate.
	before := m.Distinct()
	for i := 0; i < 1000; i++ {
		m.AddValue(model.Str(fmt.Sprintf("v%d", i)))
	}
	if after := m.Distinct(); after != before {
		t.Errorf("duplicate adds moved the estimate: %v -> %v", before, after)
	}
}
