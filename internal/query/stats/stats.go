// Package stats collects per-graph cardinality statistics for the
// cost-based query planner: label and predicate (edge-label) histograms,
// degree distributions, and distinct-value sketches for node properties.
//
// A Stats value is an immutable snapshot of one stable graph epoch. The
// companion Versioned publisher keys freshness on the owning store's
// cache.Epoch double-bump discipline: every mutation bumps the epoch twice
// under the store's write lock, so a Stats built at epoch E is served only
// while the store still reads E — a stale histogram is unreachable by
// construction, exactly the invalidation-free contract the caching layer
// established. Estimation accessors are nil-safe: a nil *Stats answers
// with uniform textbook assumptions, so the planner degrades to a
// deterministic heuristic rather than branching on availability.
package stats

import (
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"

	"gdbm/internal/model"
)

// Provider is implemented by stores and engine cores that can produce
// statistics current at a stable epoch. A (nil, nil) return means the
// surface exists but no statistics are collectable for this instance (the
// planner then falls back to the declaration-order greedy plan).
type Provider interface {
	PlanStats() (*Stats, error)
}

// DegBuckets is the number of log2 degree-histogram buckets: bucket i
// counts nodes whose Both-direction degree d satisfies 2^i <= d+1 < 2^(i+1).
const DegBuckets = 32

// defaults used by the nil-Stats uniform model: a mid-sized graph with
// textbook selectivities. Chosen once so every caller degrades identically.
const (
	defaultNodes    = 1000.0
	defaultFanout   = 4.0
	defaultPropSel  = 0.1
	defaultLabelSel = 0.2
)

// Stats is an immutable statistics snapshot of one graph epoch.
type Stats struct {
	// Epoch is the stable (even) cache.Epoch value the snapshot renders.
	Epoch uint64
	// Nodes and Edges are the total entity counts.
	Nodes int
	Edges int
	// NodeLabel and EdgeLabel count entities per label. The empty label
	// counts entities stored without one.
	NodeLabel map[string]int
	EdgeLabel map[string]int
	// DegHist is the log2 histogram of Both-direction node degrees.
	DegHist [DegBuckets]int
	// distinct maps label+"\x00"+prop to a KMV distinct-value sketch; the
	// empty label aggregates across all labels.
	distinct map[string]*KMV
}

// Build scans g and returns its statistics stamped with epoch. The caller
// is responsible for epoch stability (read it under the store's mutation
// exclusion, or build from an epoch-pinned snapshot).
func Build(g model.Graph, epoch uint64) (*Stats, error) {
	s := &Stats{
		Epoch:     epoch,
		NodeLabel: map[string]int{},
		EdgeLabel: map[string]int{},
		distinct:  map[string]*KMV{},
	}
	sketch := func(label, prop string, v model.Value) {
		key := label + "\x00" + prop
		k := s.distinct[key]
		if k == nil {
			k = NewKMV(0)
			s.distinct[key] = k
		}
		k.AddValue(v)
	}
	degrees := map[model.NodeID]int{}
	err := g.Nodes(func(n model.Node) bool {
		s.Nodes++
		s.NodeLabel[n.Label]++
		for prop, v := range n.Props {
			sketch(n.Label, prop, v)
			if n.Label != "" {
				sketch("", prop, v)
			}
		}
		degrees[n.ID] = 0
		return true
	})
	if err != nil {
		return nil, err
	}
	err = g.Edges(func(e model.Edge) bool {
		s.Edges++
		s.EdgeLabel[e.Label]++
		degrees[e.From]++
		degrees[e.To]++
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, d := range degrees {
		s.DegHist[degBucket(d)]++
	}
	return s, nil
}

func degBucket(d int) int {
	b := 0
	for v := d + 1; v > 1 && b < DegBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// CountNodes estimates the number of nodes carrying label ("" = all).
func (s *Stats) CountNodes(label string) float64 {
	if s == nil {
		if label == "" {
			return defaultNodes
		}
		return defaultNodes * defaultLabelSel
	}
	if label == "" {
		return float64(s.Nodes)
	}
	return float64(s.NodeLabel[label])
}

// Fanout estimates the expected number of incident edges with the given
// label ("" = any) per node in direction dir — the expansion factor of one
// Expand step.
func (s *Stats) Fanout(label string, dir model.Direction) float64 {
	var f float64
	if s == nil {
		f = defaultFanout
		if label != "" {
			f *= defaultLabelSel
		}
	} else {
		n := float64(s.Nodes)
		if n < 1 {
			return 0
		}
		if label == "" {
			f = float64(s.Edges) / n
		} else {
			f = float64(s.EdgeLabel[label]) / n
		}
	}
	if dir == model.Both {
		f *= 2
	}
	return f
}

// PropSelectivity estimates the fraction of label-carrying nodes that
// match an equality predicate on prop, as 1/distinct(label, prop) from the
// KMV sketch, clamped to [1/count, 1]. Unknown (label, prop) pairs answer
// 1/count — an equality on a never-seen property matches at most the one
// node the planner should still plan for.
func (s *Stats) PropSelectivity(label, prop string) float64 {
	if s == nil {
		return defaultPropSel
	}
	count := s.CountNodes(label)
	if count < 1 {
		return 1
	}
	k := s.distinct[label+"\x00"+prop]
	if k == nil {
		return 1 / count
	}
	d := k.Distinct()
	if d < 1 {
		d = 1
	}
	sel := 1 / d
	if min := 1 / count; sel < min {
		sel = min
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// DistinctValues reports the estimated number of distinct values of prop
// on label-carrying nodes ("" = all labels); ok is false when the pair was
// never observed.
func (s *Stats) DistinctValues(label, prop string) (est float64, ok bool) {
	if s == nil {
		return 0, false
	}
	k := s.distinct[label+"\x00"+prop]
	if k == nil {
		return 0, false
	}
	return k.Distinct(), true
}

// DegreeP90 estimates the 90th-percentile Both-direction degree from the
// histogram — the planner's skew signal: a heavy tail is where multiway
// intersection beats expand-and-filter hardest.
func (s *Stats) DegreeP90() float64 {
	if s == nil || s.Nodes == 0 {
		return defaultFanout
	}
	target := int(math.Ceil(float64(s.Nodes) * 0.9))
	seen := 0
	for b, c := range s.DegHist {
		seen += c
		if seen >= target {
			// Upper edge of bucket b: degree 2^(b+1)-2.
			return float64(int(1)<<(b+1) - 2)
		}
	}
	return float64(int(1) << DegBuckets)
}

// --- KMV distinct-value sketch ---

// kmvK is the default sketch size: the k smallest distinct 64-bit value
// hashes. Standard KMV error is ~1/sqrt(k-2) — about 6% at 256 — plenty
// for order-of-magnitude cost estimation.
const kmvK = 256

// KMV estimates distinct-value counts from the k minimum hash values.
// Below k observed distinct hashes it is exact.
type KMV struct {
	k  int
	hs []uint64 // sorted ascending, distinct
}

// NewKMV returns a sketch of size k (<=0 selects the default).
func NewKMV(k int) *KMV {
	if k <= 0 {
		k = kmvK
	}
	return &KMV{k: k}
}

// AddValue folds one property value into the sketch. The FNV hash is
// passed through a splitmix64 finalizer: KMV's estimator is an order
// statistic over the full 64-bit range, and raw FNV of short, similar keys
// is not uniform enough in the high bits.
func (m *KMV) AddValue(v model.Value) {
	h := fnv.New64a()
	h.Write(v.EncodeKey(nil))
	m.Add(mix64(h.Sum64()))
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add folds one pre-hashed observation into the sketch.
func (m *KMV) Add(h uint64) {
	i := sort.Search(len(m.hs), func(i int) bool { return m.hs[i] >= h })
	if i < len(m.hs) && m.hs[i] == h {
		return
	}
	if len(m.hs) >= m.k {
		if h >= m.hs[len(m.hs)-1] {
			return
		}
		m.hs = m.hs[:len(m.hs)-1]
		i = sort.Search(len(m.hs), func(i int) bool { return m.hs[i] >= h })
	}
	m.hs = append(m.hs, 0)
	copy(m.hs[i+1:], m.hs[i:])
	m.hs[i] = h
}

// Distinct estimates the number of distinct values observed.
func (m *KMV) Distinct() float64 {
	if len(m.hs) < m.k {
		return float64(len(m.hs))
	}
	// Saturated: (k-1) / normalized k-th minimum.
	frac := float64(m.hs[len(m.hs)-1]) / float64(math.MaxUint64)
	if frac <= 0 {
		return float64(len(m.hs))
	}
	return float64(m.k-1) / frac
}

// --- Versioned publisher ---

// Versioned publishes one Stats per stable graph epoch. The owner follows
// the same discipline as adj.Versioned: mutations double-bump the epoch
// under the write lock, so TryGet's equality check against a currently-read
// epoch is exactly the staleness test. Publish keeps the newest epoch and
// never goes backwards, making concurrent rebuild races harmless.
type Versioned struct {
	cur atomic.Pointer[Stats]
}

// TryGet returns the published statistics iff they render exactly the
// given epoch and the epoch is stable (even); nil means a rebuild is
// needed.
func (v *Versioned) TryGet(epoch uint64) *Stats {
	if epoch&1 == 1 { // mid-mutation; the writer will bump again
		return nil
	}
	s := v.cur.Load()
	if s == nil || s.Epoch != epoch {
		return nil
	}
	return s
}

// Publish installs s unless a same-or-newer epoch is already published.
func (v *Versioned) Publish(s *Stats) {
	for {
		old := v.cur.Load()
		if old != nil && old.Epoch >= s.Epoch {
			return
		}
		if v.cur.CompareAndSwap(old, s) {
			return
		}
	}
}
