package stats_test

import (
	"math"
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

func buildGraph(t *testing.T, nodes int) (*memgraph.Graph, []model.NodeID) {
	t.Helper()
	g := memgraph.New()
	labels := []string{"person", "place", "thing"}
	ids := make([]model.NodeID, 0, nodes)
	for i := 0; i < nodes; i++ {
		id, err := g.AddNode(labels[i%len(labels)], model.Props("rank", i%7))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 1; i < nodes; i++ {
		if _, err := g.AddEdge("knows", ids[i], ids[i/2], nil); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestBuildCounts(t *testing.T) {
	g, _ := buildGraph(t, 30)
	s, err := stats.Build(g, g.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 30 || s.Edges != 29 {
		t.Fatalf("counts = %d nodes %d edges", s.Nodes, s.Edges)
	}
	if s.NodeLabel["person"] != 10 || s.NodeLabel["place"] != 10 || s.NodeLabel["thing"] != 10 {
		t.Fatalf("label histogram = %v", s.NodeLabel)
	}
	if s.EdgeLabel["knows"] != 29 {
		t.Fatalf("edge histogram = %v", s.EdgeLabel)
	}
	if got := s.CountNodes("person"); got != 10 {
		t.Errorf("CountNodes(person) = %v", got)
	}
	if got := s.CountNodes(""); got != 30 {
		t.Errorf("CountNodes() = %v", got)
	}
	// Fanout: 29 knows edges over 30 nodes, doubled for Both.
	if got := s.Fanout("knows", model.Out); math.Abs(got-29.0/30) > 1e-9 {
		t.Errorf("Fanout(knows, Out) = %v", got)
	}
	if got := s.Fanout("knows", model.Both); math.Abs(got-2*29.0/30) > 1e-9 {
		t.Errorf("Fanout(knows, Both) = %v", got)
	}
	if got := s.Fanout("ghost", model.Out); got != 0 {
		t.Errorf("Fanout(ghost) = %v", got)
	}
}

func TestPropSelectivity(t *testing.T) {
	g, _ := buildGraph(t, 70)
	s, err := stats.Build(g, g.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	// rank takes 7 distinct values; below sketch saturation this is exact.
	d, ok := s.DistinctValues("", "rank")
	if !ok || d != 7 {
		t.Fatalf("DistinctValues(rank) = %v, %v", d, ok)
	}
	if got := s.PropSelectivity("", "rank"); math.Abs(got-1.0/7) > 1e-9 {
		t.Errorf("PropSelectivity(rank) = %v", got)
	}
	// A never-seen property matches at most one node.
	if got := s.PropSelectivity("person", "ghost"); math.Abs(got-1.0/float64(s.NodeLabel["person"])) > 1e-9 {
		t.Errorf("PropSelectivity(ghost) = %v", got)
	}
	// A label with no nodes clamps to 1.
	if got := s.PropSelectivity("ghost", "rank"); got != 1 {
		t.Errorf("PropSelectivity(ghost label) = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, _ := buildGraph(t, 40)
	s, err := stats.Build(g, g.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range s.DegHist {
		total += c
	}
	if total != s.Nodes {
		t.Fatalf("degree histogram counts %d nodes, have %d", total, s.Nodes)
	}
	if p90 := s.DegreeP90(); p90 < 1 {
		t.Errorf("DegreeP90 = %v", p90)
	}
}

func TestVersionedEpochKeying(t *testing.T) {
	g, ids := buildGraph(t, 12)
	var v stats.Versioned
	epoch := g.Epoch()
	if got := v.TryGet(epoch); got != nil {
		t.Fatal("empty Versioned served stats")
	}
	s, err := stats.Build(g, epoch)
	if err != nil {
		t.Fatal(err)
	}
	v.Publish(s)
	if got := v.TryGet(epoch); got != s {
		t.Fatal("published stats not served for their epoch")
	}
	// Any mutation double-bumps the epoch: the old stats must be
	// unreachable through TryGet even though still published.
	if err := g.SetNodeProp(ids[0], "rank", model.Int(99)); err != nil {
		t.Fatal(err)
	}
	if got := v.TryGet(g.Epoch()); got != nil {
		t.Fatal("stale stats served after mutation")
	}
	// Odd (mid-mutation) epochs never serve.
	if got := v.TryGet(epoch | 1); got != nil {
		t.Fatal("stats served for an odd epoch")
	}
	// Publish never regresses to an older epoch.
	old := &stats.Stats{Epoch: s.Epoch - 2}
	v.Publish(old)
	if got := v.TryGet(s.Epoch); got != s {
		t.Fatal("older publish displaced newer stats")
	}
}
