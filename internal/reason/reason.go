// Package reason implements rule-based inference over triples — the
// "Reasoning" query facility of Table V that the survey attributes to the
// AllegroGraph archetype (there via Prolog; here via a datalog-style
// semi-naive fixpoint). RDFS-flavoured subclass/subproperty rules are
// provided as a standard rule set.
package reason

import (
	"fmt"
	"strings"
)

// Triple is a subject-predicate-object statement over string terms.
type Triple struct {
	S, P, O string
}

// String renders the triple.
func (t Triple) String() string { return fmt.Sprintf("(%s %s %s)", t.S, t.P, t.O) }

// Term is a constant or a variable; variables start with '?'.
type Term string

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return strings.HasPrefix(string(t), "?") }

// Pattern is a triple pattern over terms.
type Pattern struct {
	S, P, O Term
}

// Rule derives Head from the conjunction of Body patterns. Every head
// variable must appear in the body (safety).
type Rule struct {
	Name string
	Head Pattern
	Body []Pattern
}

// Validate checks rule safety.
func (r Rule) Validate() error {
	bound := map[Term]bool{}
	for _, p := range r.Body {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() {
				bound[t] = true
			}
		}
	}
	for _, t := range []Term{r.Head.S, r.Head.P, r.Head.O} {
		if t.IsVar() && !bound[t] {
			return fmt.Errorf("reason: rule %q head variable %s not bound in body", r.Name, t)
		}
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("reason: rule %q has an empty body", r.Name)
	}
	return nil
}

// RDFS returns the standard rule set: transitivity of subClassOf and
// subPropertyOf, type propagation through subClassOf, and property
// propagation through subPropertyOf.
func RDFS() []Rule {
	return []Rule{
		{
			Name: "subclass-transitive",
			Head: Pattern{"?a", "subClassOf", "?c"},
			Body: []Pattern{{"?a", "subClassOf", "?b"}, {"?b", "subClassOf", "?c"}},
		},
		{
			Name: "type-inheritance",
			Head: Pattern{"?x", "type", "?c"},
			Body: []Pattern{{"?x", "type", "?b"}, {"?b", "subClassOf", "?c"}},
		},
		{
			Name: "subproperty-transitive",
			Head: Pattern{"?p", "subPropertyOf", "?r"},
			Body: []Pattern{{"?p", "subPropertyOf", "?q"}, {"?q", "subPropertyOf", "?r"}},
		},
	}
}

// Infer computes the fixpoint of rules over base and returns only the newly
// derived triples. It runs semi-naive evaluation: each round only joins
// against facts derived in the previous round.
func Infer(base []Triple, rules []Rule) ([]Triple, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	all := map[Triple]bool{}
	for _, t := range base {
		all[t] = true
	}
	delta := map[Triple]bool{}
	for t := range all {
		delta[t] = true
	}
	var derived []Triple
	for len(delta) > 0 {
		next := map[Triple]bool{}
		for _, r := range rules {
			// For semi-naive evaluation at least one body atom must match
			// a delta fact; we iterate positions.
			for pos := range r.Body {
				matches := matchBody(r.Body, pos, all, delta)
				for _, binding := range matches {
					t, ok := instantiate(r.Head, binding)
					if !ok {
						continue
					}
					if !all[t] {
						all[t] = true
						next[t] = true
						derived = append(derived, t)
					}
				}
			}
		}
		delta = next
	}
	return derived, nil
}

// binding maps variables to constants.
type binding map[Term]string

// matchBody enumerates bindings satisfying the body, with atom deltaPos
// restricted to delta facts.
func matchBody(body []Pattern, deltaPos int, all, delta map[Triple]bool) []binding {
	var out []binding
	var rec func(i int, b binding)
	rec = func(i int, b binding) {
		if i == len(body) {
			cp := binding{}
			for k, v := range b {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		source := all
		if i == deltaPos {
			source = delta
		}
		for t := range source {
			nb, ok := unify(body[i], t, b)
			if !ok {
				continue
			}
			rec(i+1, nb)
		}
	}
	rec(0, binding{})
	return out
}

// unify extends b so that p matches t, or reports failure. It never mutates
// b on failure; on success it may return b itself extended.
func unify(p Pattern, t Triple, b binding) (binding, bool) {
	nb := b
	cloned := false
	bind := func(term Term, val string) bool {
		if !term.IsVar() {
			return string(term) == val
		}
		if cur, ok := nb[term]; ok {
			return cur == val
		}
		if !cloned {
			c := binding{}
			for k, v := range nb {
				c[k] = v
			}
			nb = c
			cloned = true
		}
		nb[term] = val
		return true
	}
	if !bind(p.S, t.S) || !bind(p.P, t.P) || !bind(p.O, t.O) {
		return b, false
	}
	return nb, true
}

func instantiate(p Pattern, b binding) (Triple, bool) {
	get := func(t Term) (string, bool) {
		if t.IsVar() {
			v, ok := b[t]
			return v, ok
		}
		return string(t), true
	}
	s, ok1 := get(p.S)
	pr, ok2 := get(p.P)
	o, ok3 := get(p.O)
	if !ok1 || !ok2 || !ok3 {
		return Triple{}, false
	}
	return Triple{s, pr, o}, true
}
