package reason

import (
	"testing"
)

func TestSubclassTransitivity(t *testing.T) {
	base := []Triple{
		{"cat", "subClassOf", "mammal"},
		{"mammal", "subClassOf", "animal"},
		{"felix", "type", "cat"},
	}
	derived, err := Infer(base, RDFS())
	if err != nil {
		t.Fatal(err)
	}
	want := map[Triple]bool{
		{"cat", "subClassOf", "animal"}: true,
		{"felix", "type", "mammal"}:     true,
		{"felix", "type", "animal"}:     true,
	}
	got := map[Triple]bool{}
	for _, d := range derived {
		got[d] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing derived %v", w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("derived %v, want exactly %v", derived, want)
	}
}

func TestDeepChainFixpoint(t *testing.T) {
	// c0 ⊂ c1 ⊂ ... ⊂ c9: transitive closure has 9*8/2 = 36 new pairs.
	var base []Triple
	for i := 0; i < 9; i++ {
		base = append(base, Triple{cls(i), "subClassOf", cls(i + 1)})
	}
	derived, err := Infer(base, RDFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 36 {
		t.Errorf("derived %d, want 36", len(derived))
	}
}

func cls(i int) string { return string(rune('a' + i)) }

func TestCustomRule(t *testing.T) {
	// ancestor via parent.
	rules := []Rule{
		{
			Name: "ancestor-base",
			Head: Pattern{"?x", "ancestor", "?y"},
			Body: []Pattern{{"?x", "parent", "?y"}},
		},
		{
			Name: "ancestor-step",
			Head: Pattern{"?x", "ancestor", "?z"},
			Body: []Pattern{{"?x", "parent", "?y"}, {"?y", "ancestor", "?z"}},
		},
	}
	base := []Triple{
		{"a", "parent", "b"},
		{"b", "parent", "c"},
		{"c", "parent", "d"},
	}
	derived, err := Infer(base, rules)
	if err != nil {
		t.Fatal(err)
	}
	got := map[Triple]bool{}
	for _, d := range derived {
		got[d] = true
	}
	for _, w := range []Triple{
		{"a", "ancestor", "b"}, {"a", "ancestor", "c"}, {"a", "ancestor", "d"},
		{"b", "ancestor", "c"}, {"b", "ancestor", "d"}, {"c", "ancestor", "d"},
	} {
		if !got[w] {
			t.Errorf("missing %v", w)
		}
	}
	if len(got) != 6 {
		t.Errorf("derived = %v", derived)
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	bad := Rule{
		Name: "unsafe",
		Head: Pattern{"?x", "p", "?unbound"},
		Body: []Pattern{{"?x", "q", "?y"}},
	}
	if _, err := Infer(nil, []Rule{bad}); err == nil {
		t.Error("unsafe rule should be rejected")
	}
	empty := Rule{Name: "emptybody", Head: Pattern{"a", "b", "c"}}
	if _, err := Infer(nil, []Rule{empty}); err == nil {
		t.Error("empty body should be rejected")
	}
}

func TestNoRulesNoDerivation(t *testing.T) {
	derived, err := Infer([]Triple{{"a", "b", "c"}}, nil)
	if err != nil || len(derived) != 0 {
		t.Errorf("derived = %v, %v", derived, err)
	}
}

func TestConstantPatternRule(t *testing.T) {
	rules := []Rule{{
		Name: "mark-root",
		Head: Pattern{"?x", "isRoot", "true"},
		Body: []Pattern{{"?x", "type", "root"}},
	}}
	derived, err := Infer([]Triple{{"r", "type", "root"}, {"s", "type", "leaf"}}, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 1 || derived[0] != (Triple{"r", "isRoot", "true"}) {
		t.Errorf("derived = %v", derived)
	}
}

func TestDerivedOnlyNew(t *testing.T) {
	// A derivable fact already in the base must not be re-derived.
	base := []Triple{
		{"a", "subClassOf", "b"},
		{"b", "subClassOf", "c"},
		{"a", "subClassOf", "c"}, // already present
	}
	derived, err := Infer(base, RDFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 0 {
		t.Errorf("derived = %v, want none", derived)
	}
}
