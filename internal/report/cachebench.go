package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/storage/vfs"
)

// CacheResult is one (engine, kernel) measurement of the cache sweep.
// Uncached runs with CacheBytes=0, cold is the first pass on a cached
// instance (all misses), warm repeats the identical pass with the graph
// epoch unchanged so every tier can hit.
type CacheResult struct {
	Engine      string  `json:"engine"`
	Kernel      string  `json:"kernel"`
	UncachedNs  int64   `json:"uncached_ns"`
	ColdNs      int64   `json:"cold_ns"`
	WarmNs      int64   `json:"warm_ns"`
	WarmSpeedup float64 `json:"warm_speedup_vs_uncached"`
}

// CacheTierStats is the hit/miss ledger of one cache tier at the end of an
// engine's sweep.
type CacheTierStats struct {
	Tier      string `json:"tier"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	UsedBytes int64  `json:"used_bytes"`
}

// CacheSweep is the full cold/warm comparison across engines.
type CacheSweep struct {
	Nodes      int                         `json:"nodes"`
	Degree     int                         `json:"degree"`
	Seed       int64                       `json:"seed"`
	CacheBytes int64                       `json:"cache_bytes"`
	Note       string                      `json:"note"`
	Results    []CacheResult               `json:"results"`
	Stats      map[string][]CacheTierStats `json:"stats"`
}

// cacheKernels returns one full query pass per kernel over the sampled
// ids. A pass issues many operations so per-call timer noise averages out.
func cacheKernels(es engine.Essentials, ids []model.NodeID) map[string]func() error {
	kernels := map[string]func() error{}
	if es.KNeighborhood != nil {
		kernels["khood"] = func() error {
			for i := 0; i < 32; i++ {
				if _, err := es.KNeighborhood(ids[(i*37)%len(ids)], 2); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if es.NodeAdjacency != nil {
		kernels["adjacency"] = func() error {
			for i := 0; i < 64; i++ {
				a := ids[i%len(ids)]
				b := ids[(i*13+1)%len(ids)]
				if _, err := es.NodeAdjacency(a, b); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if es.Summarization != nil {
		kernels["summarize"] = func() error {
			for i := 0; i < 16; i++ {
				if _, err := es.Summarization(0, "N", "idx"); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return kernels
}

// RunCacheSweep ingests the same R-MAT graph into a cached and an uncached
// instance of each engine and times identical query passes: uncached,
// cold (first cached pass) and warm (repeat cached pass). open must honor
// cacheBytes; engines are closed before return.
func RunCacheSweep(open func(name string, cacheBytes int64) (engine.Engine, error),
	names []string, nodes, degree int, seed int64, cacheBytes int64) (*CacheSweep, error) {
	sweep := &CacheSweep{
		Nodes:      nodes,
		Degree:     degree,
		Seed:       seed,
		CacheBytes: cacheBytes,
		Note: "warm repeats the identical pass with no intervening mutation, so the " +
			"adjacency and result tiers serve hits; any mutation bumps the graph " +
			"epoch and the next pass is cold again by construction",
		Stats: map[string][]CacheTierStats{},
	}
	spec := gen.Spec{Kind: gen.RMAT, Nodes: nodes, EdgesPerNode: degree, Seed: seed}
	for _, name := range names {
		uncached, err := open(name, 0)
		if err != nil {
			return nil, fmt.Errorf("cache open %s uncached: %w", name, err)
		}
		cached, err := open(name, cacheBytes)
		if err != nil {
			uncached.Close()
			return nil, fmt.Errorf("cache open %s cached: %w", name, err)
		}
		err = func() error {
			uids, err := ingest(uncached, spec)
			if err != nil {
				return err
			}
			cids, err := ingest(cached, spec)
			if err != nil {
				return err
			}
			ukern := cacheKernels(uncached.Essentials(), uids)
			ckern := cacheKernels(cached.Essentials(), cids)
			for _, kname := range []string{"khood", "adjacency", "summarize"} {
				up, ok := ukern[kname]
				if !ok {
					continue
				}
				cp := ckern[kname]
				uncachedNs, err := timeOp(up)
				if err != nil {
					return fmt.Errorf("%s %s uncached: %w", name, kname, err)
				}
				// Cold: single-shot first pass; no warmup, by definition.
				start := time.Now()
				if err := cp(); err != nil {
					return fmt.Errorf("%s %s cold: %w", name, kname, err)
				}
				coldNs := time.Since(start).Nanoseconds()
				warmNs, err := timeOp(cp)
				if err != nil {
					return fmt.Errorf("%s %s warm: %w", name, kname, err)
				}
				sweep.Results = append(sweep.Results, CacheResult{
					Engine:      name,
					Kernel:      kname,
					UncachedNs:  uncachedNs,
					ColdNs:      coldNs,
					WarmNs:      warmNs,
					WarmSpeedup: float64(uncachedNs) / float64(warmNs),
				})
			}
			if cs, ok := cached.(engine.CacheStatser); ok {
				for tier, s := range cs.CacheStats() {
					sweep.Stats[name] = append(sweep.Stats[name], CacheTierStats{
						Tier: tier, Hits: s.Hits, Misses: s.Misses,
						Evictions: s.Evictions, UsedBytes: s.UsedBytes,
					})
				}
			}
			return nil
		}()
		uncached.Close()
		cached.Close()
		if err != nil {
			return nil, err
		}
	}
	return sweep, nil
}

func ingest(e engine.Engine, spec gen.Spec) ([]model.NodeID, error) {
	loader, ok := e.(engine.Loader)
	if !ok {
		return nil, fmt.Errorf("%s: no Loader surface", e.Name())
	}
	ids, err := gen.Generate(spec, loader)
	if err != nil {
		return nil, err
	}
	if p, ok := e.(engine.Persistent); ok {
		if err := p.Flush(); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// WriteCacheJSON writes the sweep to path through the vfs seam.
func WriteCacheJSON(fsys vfs.FS, path string, sweep *CacheSweep) error {
	data, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	f, w, err := vfs.Create(fsys, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderCache prints the sweep as a per-engine kernel table.
func RenderCache(w io.Writer, sweep *CacheSweep) {
	fmt.Fprintf(w, "cache sweep: R-MAT n=%d degree=%d seed=%d, budget=%d bytes\n\n",
		sweep.Nodes, sweep.Degree, sweep.Seed, sweep.CacheBytes)
	eng := ""
	for _, r := range sweep.Results {
		if r.Engine != eng {
			eng = r.Engine
			fmt.Fprintf(w, "%s\n", eng)
		}
		fmt.Fprintf(w, "  %-10s uncached %10v   cold %10v   warm %10v   %5.2fx warm\n",
			r.Kernel,
			time.Duration(r.UncachedNs).Round(time.Microsecond),
			time.Duration(r.ColdNs).Round(time.Microsecond),
			time.Duration(r.WarmNs).Round(time.Microsecond),
			r.WarmSpeedup)
	}
	engines := make([]string, 0, len(sweep.Stats))
	for eng := range sweep.Stats {
		engines = append(engines, eng)
	}
	sort.Strings(engines)
	for _, eng := range engines {
		tiers := append([]CacheTierStats(nil), sweep.Stats[eng]...)
		sort.Slice(tiers, func(i, j int) bool { return tiers[i].Tier < tiers[j].Tier })
		for _, s := range tiers {
			fmt.Fprintf(w, "%s %s: hits=%d misses=%d evictions=%d used=%d\n",
				eng, s.Tier, s.Hits, s.Misses, s.Evictions, s.UsedBytes)
		}
	}
	fmt.Fprintf(w, "\n%s\n", sweep.Note)
}
