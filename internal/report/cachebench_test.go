package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/storage/vfs"

	_ "gdbm/internal/engines/neograph"
	_ "gdbm/internal/engines/vertexkv"
)

func TestCacheSweepRuns(t *testing.T) {
	open := func(name string, cacheBytes int64) (engine.Engine, error) {
		return engine.Open(name, engine.Options{Dir: t.TempDir(), CacheBytes: cacheBytes})
	}
	sweep, err := RunCacheSweep(open, []string{"neograph", "vertexkv"}, 300, 2, 7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.CacheBytes != 1<<20 || sweep.Nodes != 300 {
		t.Fatalf("sweep header: %+v", sweep)
	}
	kernels := map[string]int{}
	anySpeedup := false
	for _, r := range sweep.Results {
		kernels[r.Kernel]++
		if r.UncachedNs <= 0 || r.ColdNs <= 0 || r.WarmNs <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		if r.WarmSpeedup > 1 {
			anySpeedup = true
		}
	}
	// Both engines expose khood, adjacency and summarization.
	for _, k := range []string{"khood", "adjacency", "summarize"} {
		if kernels[k] != 2 {
			t.Errorf("kernel %s measured %d times, want 2", k, kernels[k])
		}
	}
	if !anySpeedup {
		t.Error("no kernel shows a warm-hit speedup over the uncached baseline")
	}
	for _, name := range []string{"neograph", "vertexkv"} {
		var hits uint64
		for _, s := range sweep.Stats[name] {
			hits += s.Hits
		}
		if hits == 0 {
			t.Errorf("%s: sweep recorded zero cache hits", name)
		}
	}

	var buf bytes.Buffer
	RenderCache(&buf, sweep)
	for _, want := range []string{"cache sweep", "khood", "uncached", "warm"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render misses %q:\n%s", want, buf.String())
		}
	}

	fs := vfs.NewFaultFS()
	if err := WriteCacheJSON(fs, "bench.json", sweep); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("bench.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	var back CacheSweep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	if len(back.Results) != len(sweep.Results) {
		t.Fatalf("JSON round trip lost results: %d != %d", len(back.Results), len(sweep.Results))
	}
}
