package report

import "fmt"

// The paper's published matrices, transcribed from the text (Tables I, II,
// V, VI are unambiguous in the source; the rotated headers of Tables III,
// IV, VII were reconstructed from the mark positions and the surrounding
// prose — every reconstructed cell is justified in EXPERIMENTS.md).

// PaperTable maps row name -> column name -> mark ("•" or "◦").
type PaperTable map[string]map[string]string

// PaperTables returns the expected matrices keyed by table id.
func PaperTables() map[string]PaperTable {
	return map[string]PaperTable{
		"I": {
			"AllegroGraph":  {"Main memory": "•", "External memory": "•", "Indexes": "•"},
			"DEX":           {"Main memory": "•", "External memory": "•", "Indexes": "•"},
			"Filament":      {"Main memory": "•", "Backend Storage": "•"},
			"G-Store":       {"External memory": "•"},
			"HyperGraphDB":  {"Main memory": "•", "External memory": "•", "Backend Storage": "•", "Indexes": "•"},
			"InfiniteGraph": {"External memory": "•", "Indexes": "•"},
			"Neo4j":         {"Main memory": "•", "External memory": "•", "Indexes": "•"},
			"Sones":         {"Main memory": "•", "Indexes": "•"},
			"VertexDB":      {"External memory": "•", "Backend Storage": "•"},
		},
		"II": {
			"AllegroGraph":  {"Data Definition Lang.": "•", "Data Manipulat. Lang.": "•", "Query Language": "•", "API": "•", "GUI": "•"},
			"DEX":           {"API": "•"},
			"Filament":      {"API": "•"},
			"G-Store":       {"Data Definition Lang.": "•", "Query Language": "•", "API": "•"},
			"HyperGraphDB":  {"API": "•"},
			"InfiniteGraph": {"API": "•"},
			"Neo4j":         {"API": "•"},
			"Sones":         {"Data Definition Lang.": "•", "Data Manipulat. Lang.": "•", "Query Language": "•", "API": "•", "GUI": "•"},
			"VertexDB":      {"API": "•"},
		},
		"III": {
			"AllegroGraph":  {"Simple graphs": "•", "Node labeled": "•", "Directed": "•", "Edge labeled": "•"},
			"DEX":           {"Attributed graphs": "•", "Node labeled": "•", "Node attribution": "•", "Directed": "•", "Edge labeled": "•", "Edge attribution": "•"},
			"Filament":      {"Simple graphs": "•", "Node labeled": "•", "Directed": "•", "Edge labeled": "•"},
			"G-Store":       {"Simple graphs": "•", "Node labeled": "•", "Directed": "•", "Edge labeled": "•"},
			"HyperGraphDB":  {"Hypergraphs": "•", "Node labeled": "•", "Directed": "•", "Edge labeled": "•"},
			"InfiniteGraph": {"Attributed graphs": "•", "Node labeled": "•", "Node attribution": "•", "Directed": "•", "Edge labeled": "•", "Edge attribution": "•"},
			"Neo4j":         {"Attributed graphs": "•", "Node labeled": "•", "Node attribution": "•", "Directed": "•", "Edge labeled": "•", "Edge attribution": "•"},
			"Sones":         {"Hypergraphs": "•", "Attributed graphs": "•", "Node labeled": "•", "Node attribution": "•", "Directed": "•", "Edge labeled": "•", "Edge attribution": "•"},
			"VertexDB":      {"Simple graphs": "•", "Node labeled": "•", "Directed": "•", "Edge labeled": "•"},
		},
		"IV": {
			"AllegroGraph":  {"Value nodes": "•", "Simple relations": "•"},
			"DEX":           {"Node types": "•", "Relation types": "•", "Object nodes": "•", "Value nodes": "•", "Object relations": "•", "Simple relations": "•"},
			"Filament":      {"Value nodes": "•", "Simple relations": "•"},
			"G-Store":       {"Value nodes": "•", "Simple relations": "•"},
			"HyperGraphDB":  {"Node types": "•", "Relation types": "•", "Value nodes": "•", "Simple relations": "•", "Complex relations": "•"},
			"InfiniteGraph": {"Node types": "•", "Relation types": "•", "Object nodes": "•", "Value nodes": "•", "Object relations": "•", "Simple relations": "•"},
			"Neo4j":         {"Object nodes": "•", "Value nodes": "•", "Object relations": "•", "Simple relations": "•"},
			"Sones":         {"Value nodes": "•", "Simple relations": "•", "Complex relations": "•"},
			"VertexDB":      {"Value nodes": "•", "Simple relations": "•"},
		},
		"V": {
			"AllegroGraph":  {"Query Lang.": "◦", "API": "•", "Graphical Q. L.": "•", "Retrieval": "•", "Reasoning": "•", "Analysis": "•"},
			"DEX":           {"API": "•", "Retrieval": "•", "Analysis": "•"},
			"Filament":      {"API": "•", "Retrieval": "•"},
			"G-Store":       {"Query Lang.": "•", "Retrieval": "•"},
			"HyperGraphDB":  {"API": "•", "Retrieval": "•"},
			"InfiniteGraph": {"API": "•", "Retrieval": "•"},
			"Neo4j":         {"Query Lang.": "◦", "API": "•", "Retrieval": "•"},
			"Sones":         {"Query Lang.": "•", "Graphical Q. L.": "•", "Retrieval": "•", "Analysis": "•"},
			"VertexDB":      {"API": "•", "Retrieval": "•"},
		},
		"VI": {
			"DEX":           {"Types checking": "•", "Node/edge identity": "•", "Referential integrity": "•"},
			"HyperGraphDB":  {"Types checking": "•", "Node/edge identity": "•"},
			"InfiniteGraph": {"Types checking": "•", "Node/edge identity": "•"},
			"Sones":         {"Node/edge identity": "•", "Cardinality checking": "•"},
		},
		"VII": {
			"AllegroGraph":  {"Node/edge adjacency": "•", "k-neighborhood": "•", "Summarization": "•"},
			"DEX":           {"Node/edge adjacency": "•", "k-neighborhood": "•", "Fixed-length paths": "•", "Shortest path": "•", "Summarization": "•"},
			"Filament":      {"Node/edge adjacency": "•", "k-neighborhood": "•", "Summarization": "•"},
			"G-Store":       {"Node/edge adjacency": "•", "k-neighborhood": "•", "Fixed-length paths": "•", "Shortest path": "•", "Summarization": "•"},
			"HyperGraphDB":  {"Node/edge adjacency": "•", "Summarization": "•"},
			"InfiniteGraph": {"Node/edge adjacency": "•", "k-neighborhood": "•", "Fixed-length paths": "•", "Shortest path": "•", "Summarization": "•"},
			"Neo4j":         {"Node/edge adjacency": "•", "k-neighborhood": "•", "Fixed-length paths": "•", "Shortest path": "•", "Summarization": "•"},
			"Sones":         {"Node/edge adjacency": "•", "Summarization": "•"},
			"VertexDB":      {"Node/edge adjacency": "•", "k-neighborhood": "•", "Fixed-length paths": "•", "Summarization": "•"},
		},
	}
}

// Mismatch is one cell where the regenerated table differs from the paper.
type Mismatch struct {
	TableID string
	Row     string
	Col     string
	Paper   string
	Ours    string
}

// String renders the mismatch.
func (m Mismatch) String() string {
	p, o := m.Paper, m.Ours
	if p == "" {
		p = "(blank)"
	}
	if o == "" {
		o = "(blank)"
	}
	return fmt.Sprintf("Table %s [%s × %s]: paper=%s ours=%s", m.TableID, m.Row, m.Col, p, o)
}

// Diff compares a regenerated table against the paper's matrix. Tables with
// no reference (VIII) return nil.
func Diff(t *Table) []Mismatch {
	ref, ok := PaperTables()[t.ID]
	if !ok {
		return nil
	}
	var out []Mismatch
	for _, row := range t.Rows {
		refRow := ref[row.Name]
		for i, col := range t.Cols {
			want := refRow[col]
			got := ""
			if i < len(row.Cells) {
				got = row.Cells[i]
			}
			if want != got {
				out = append(out, Mismatch{TableID: t.ID, Row: row.Name, Col: col, Paper: want, Ours: got})
			}
		}
	}
	// Rows present in the paper but missing from our table (Table VI trims
	// constraint-free engines like the paper does).
	have := map[string]bool{}
	for _, r := range t.Rows {
		have[r.Name] = true
	}
	for name, cells := range ref {
		if !have[name] && len(cells) > 0 {
			out = append(out, Mismatch{TableID: t.ID, Row: name, Col: "(row)", Paper: "present", Ours: "missing"})
		}
	}
	return out
}
