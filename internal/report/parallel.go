package report

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/gen"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/vfs"
)

// ParallelResult is one (kernel, workers) measurement of the parallel
// kernel sweep. Workers 0 is the sequential internal/algo baseline the
// speedups are relative to.
type ParallelResult struct {
	Kernel  string  `json:"kernel"`
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

// ParallelSweep is the full run, with enough environment detail that a
// reader can judge the numbers: on a single-core container the parallel
// kernels cannot beat the sequential baseline, and the JSON must say so
// rather than pretend.
type ParallelSweep struct {
	Nodes  int   `json:"nodes"`
	Degree int   `json:"degree"`
	Seed   int64 `json:"seed"`
	Stamp
	// DegradedHost is true when the run had a single schedulable CPU
	// (GOMAXPROCS=1 or NumCPU=1). Speedup figures from such a run measure
	// coordination overhead, not scaling, and must not be quoted as the
	// kernels' parallel performance.
	DegradedHost bool             `json:"degraded_host"`
	Note         string           `json:"note"`
	Results      []ParallelResult `json:"results"`
}

type memSink struct{ g *memgraph.Graph }

func (s memSink) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	return s.g.AddNode(label, props)
}
func (s memSink) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return s.g.AddEdge(label, from, to, props)
}

// parallelKernels maps kernel name to a (sequential, parallel) pair over
// the shared R-MAT fixture. Each function runs one full operation.
func parallelKernels(g *memgraph.Graph, ids []model.NodeID, pe *algo.PathExpr, pat *algo.Pattern) map[string][2]func(opt par.Options) error {
	ctx := context.Background()
	start := ids[0]
	return map[string][2]func(opt par.Options) error{
		"bfs": {
			func(par.Options) error {
				return algo.BFS(g, start, model.Both, func(model.NodeID, int) bool { return true })
			},
			func(opt par.Options) error {
				return par.BFS(ctx, g, start, model.Both, opt, func(model.NodeID, int) bool { return true })
			},
		},
		"rpq": {
			func(par.Options) error { _, err := pe.Eval(g, start); return err },
			func(opt par.Options) error { _, err := par.EvalPath(ctx, pe, g, start, opt); return err },
		},
		"pattern": {
			func(par.Options) error { _, err := algo.FindMatches(g, pat, 0); return err },
			func(opt par.Options) error { _, err := par.FindMatches(ctx, g, pat, 0, opt); return err },
		},
		"aggregate": {
			func(par.Options) error { _, err := algo.AggregateNodeProp(g, "N", "idx", algo.AggSum); return err },
			func(opt par.Options) error {
				_, err := par.AggregateNodeProp(ctx, g, "N", "idx", algo.AggSum, opt)
				return err
			},
		},
		"degrees": {
			func(par.Options) error { _, err := algo.Degrees(g, model.Both); return err },
			func(opt par.Options) error { _, err := par.Degrees(ctx, g, model.Both, opt); return err },
		},
	}
}

func timeOp(fn func() error) (int64, error) {
	// Warm once, then time the best of three runs to damp scheduler noise.
	if err := fn(); err != nil {
		return 0, err
	}
	best := int64(1<<63 - 1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best, nil
}

// RunParallelSweep builds an R-MAT property graph in memory and times every
// parallel kernel against its sequential baseline across worker counts.
func RunParallelSweep(nodes, degree int, seed int64, workerCounts []int) (*ParallelSweep, error) {
	g := memgraph.New()
	ids, err := gen.Generate(gen.Spec{Kind: gen.RMAT, Nodes: nodes, EdgesPerNode: degree, Seed: seed}, memSink{g})
	if err != nil {
		return nil, err
	}
	// Give the aggregate kernel something numeric to fold.
	for i, id := range ids {
		if err := g.SetNodeProp(id, "idx", model.Int(int64(i))); err != nil {
			return nil, err
		}
	}
	pe, err := algo.CompilePathExpr("link/link")
	if err != nil {
		return nil, err
	}
	pat, err := algo.NewPattern(
		[]algo.PatternNode{{Var: "x", Label: "N"}, {Var: "y", Label: "N"}},
		[]algo.PatternEdge{{From: 0, To: 1, Label: "link"}},
	)
	if err != nil {
		return nil, err
	}

	stamp := NewStamp()
	sweep := &ParallelSweep{
		Nodes:        nodes,
		Degree:       degree,
		Seed:         seed,
		Stamp:        stamp,
		DegradedHost: stamp.GoMaxProcs <= 1 || stamp.NumCPU <= 1,
		Note: "speedup is parallel vs sequential wall time on this host; " +
			"with GOMAXPROCS=1 the parallel kernels pay coordination overhead " +
			"and cannot exceed 1.0 — rerun on a multi-core host for scaling",
		Results: []ParallelResult{},
	}
	kernels := parallelKernels(g, ids, pe, pat)
	for _, name := range []string{"bfs", "rpq", "pattern", "aggregate", "degrees"} {
		pair := kernels[name]
		seqNs, err := timeOp(func() error { return pair[0](par.Options{}) })
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", name, err)
		}
		sweep.Results = append(sweep.Results, ParallelResult{
			Kernel: name, Workers: 0, NsPerOp: seqNs, Speedup: 1,
		})
		for _, w := range workerCounts {
			pool := par.New(w)
			opt := par.Options{Workers: w, Threshold: 1, Pool: pool}
			parNs, err := timeOp(func() error { return pair[1](opt) })
			pool.Close()
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", name, w, err)
			}
			sweep.Results = append(sweep.Results, ParallelResult{
				Kernel:  name,
				Workers: w,
				NsPerOp: parNs,
				Speedup: float64(seqNs) / float64(parNs),
			})
		}
	}
	return sweep, nil
}

// WriteParallelJSON writes the sweep to path through the vfs seam.
func WriteParallelJSON(fsys vfs.FS, path string, sweep *ParallelSweep) error {
	data, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	f, w, err := vfs.Create(fsys, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderParallel prints the sweep as a worker-count table per kernel.
func RenderParallel(w interface{ Write([]byte) (int, error) }, sweep *ParallelSweep) {
	fmt.Fprintf(w, "parallel kernel sweep: R-MAT n=%d degree=%d seed=%d (GOMAXPROCS=%d, NumCPU=%d)\n\n",
		sweep.Nodes, sweep.Degree, sweep.Seed, sweep.GoMaxProcs, sweep.NumCPU)
	if sweep.DegradedHost {
		fmt.Fprintf(w, "*** DEGRADED HOST: single schedulable CPU — the speedup column below\n")
		fmt.Fprintf(w, "*** measures coordination overhead, not parallel scaling. Do not quote\n")
		fmt.Fprintf(w, "*** these figures; rerun on a multi-core host.\n\n")
	}
	kernel := ""
	for _, r := range sweep.Results {
		if r.Kernel != kernel {
			kernel = r.Kernel
			fmt.Fprintf(w, "%s\n", kernel)
		}
		label := fmt.Sprintf("workers=%d", r.Workers)
		if r.Workers == 0 {
			label = "sequential"
		}
		fmt.Fprintf(w, "  %-12s %12v/op   %5.2fx\n", label, time.Duration(r.NsPerOp).Round(time.Microsecond), r.Speedup)
	}
	fmt.Fprintf(w, "\n%s\n", sweep.Note)
}
