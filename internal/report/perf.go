package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
)

// PerfResult is one (engine, operation, scale) measurement of the
// performance sweep, the reproduction of the HPC-SGAB-style study the
// survey cites (Dominguez-Sal et al. [11]).
type PerfResult struct {
	Engine string
	Row    string // survey row name
	Op     string
	Nodes  int
	Took   time.Duration
	// OpsDone normalizes Took per primitive operation.
	OpsDone int
}

// PerOp returns the mean time per operation.
func (r PerfResult) PerOp() time.Duration {
	if r.OpsDone == 0 {
		return 0
	}
	return r.Took / time.Duration(r.OpsDone)
}

// PerfOps lists the operations of the sweep.
var PerfOps = []string{"ingest", "bfs", "2hop", "shortest"}

// RunPerf loads an R-MAT graph of the given size into each engine (opened
// by the caller-provided factory so storage dirs are fresh) and times the
// typical graph operations. Engines that do not expose an operation are
// skipped for it.
func RunPerf(open func(name string) (engine.Engine, error), names []string, nodes, degree int, seed int64) ([]PerfResult, error) {
	var out []PerfResult
	for _, name := range names {
		e, err := open(name)
		if err != nil {
			return nil, fmt.Errorf("perf open %s: %w", name, err)
		}
		loader, ok := e.(engine.Loader)
		if !ok {
			e.Close()
			continue
		}
		start := time.Now()
		ids, err := gen.Generate(gen.Spec{Kind: gen.RMAT, Nodes: nodes, EdgesPerNode: degree, Seed: seed}, loader)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("perf ingest %s: %w", name, err)
		}
		out = append(out, PerfResult{Engine: e.Name(), Row: e.SurveyRow(), Op: "ingest", Nodes: nodes, Took: time.Since(start), OpsDone: nodes * (degree + 1)})

		es := e.Essentials()
		// BFS via repeated k-neighborhood expansion when exposed.
		if es.KNeighborhood != nil {
			start = time.Now()
			reached := 0
			for trial := 0; trial < 4; trial++ {
				nb, err := es.KNeighborhood(ids[trial%len(ids)], 4)
				if err == nil {
					reached += len(nb)
				}
			}
			out = append(out, PerfResult{Engine: e.Name(), Row: e.SurveyRow(), Op: "bfs", Nodes: nodes, Took: time.Since(start), OpsDone: 4})
			_ = reached

			start = time.Now()
			for trial := 0; trial < 8; trial++ {
				es.KNeighborhood(ids[(trial*37)%len(ids)], 2)
			}
			out = append(out, PerfResult{Engine: e.Name(), Row: e.SurveyRow(), Op: "2hop", Nodes: nodes, Took: time.Since(start), OpsDone: 8})
		}
		if es.ShortestPath != nil {
			start = time.Now()
			done := 0
			for trial := 0; trial < 4; trial++ {
				from := ids[(trial*13)%len(ids)]
				to := ids[(trial*29+len(ids)/2)%len(ids)]
				if _, err := es.ShortestPath(from, to); err == nil {
					done++
				}
			}
			out = append(out, PerfResult{Engine: e.Name(), Row: e.SurveyRow(), Op: "shortest", Nodes: nodes, Took: time.Since(start), OpsDone: 4})
		}
		e.Close()
	}
	return out, nil
}

// RenderPerf prints the sweep grouped by operation, fastest first —
// the per-operation ranking is the "shape" EXPERIMENTS.md compares with the
// cited study.
func RenderPerf(w io.Writer, results []PerfResult) {
	byOp := map[string][]PerfResult{}
	for _, r := range results {
		byOp[r.Op] = append(byOp[r.Op], r)
	}
	for _, op := range PerfOps {
		rs := byOp[op]
		if len(rs) == 0 {
			continue
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].PerOp() < rs[j].PerOp() })
		fmt.Fprintf(w, "operation %-9s (n=%d)\n", op, rs[0].Nodes)
		for _, r := range rs {
			fmt.Fprintf(w, "  %-14s %-14s %12v/op\n", r.Row, r.Engine, r.PerOp().Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// Degrees re-exports the degree summary for the shell's stats command.
func Degrees(g model.Graph) (algo.DegreeStats, error) {
	return algo.Degrees(g, model.Both)
}
