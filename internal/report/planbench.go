package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
	"gdbm/internal/storage/vfs"
)

// PlanPatterns names the benchable patterns in rendering order. Triangle
// and diamond are the cyclic cores the worst-case-optimal operator exists
// for; reorder is a chain whose selective end is declared last, so the
// naive declaration-order plan starts from the worst scan.
var PlanPatterns = []string{"triangle", "diamond", "reorder"}

// PlanResult is one (pattern, planner) measurement. Rows is the result
// cardinality — identical across planners by the differential guarantee,
// and re-checked here: a speedup that changes the answer is a bug, not a
// win.
type PlanResult struct {
	Pattern string  `json:"pattern"`
	Planner string  `json:"planner"` // naive | cost | wco
	Ns      int64   `json:"ns"`
	Rows    int64   `json:"rows"`
	Plan    string  `json:"plan"`
	Speedup float64 `json:"speedup_vs_naive"`
}

// PlanSweep is the full planner comparison on one seeded graph.
type PlanSweep struct {
	Stamp
	Nodes   int          `json:"nodes"`
	Degree  int          `json:"degree"`
	Seed    int64        `json:"seed"`
	Note    string       `json:"note"`
	Results []PlanResult `json:"results"`
}

// planBenchGraph builds the seeded benchmark graph: a hub-skewed "knows"
// graph (a few low-id hubs attract a quarter of all edges, so degree is
// heavy-tailed like real social graphs) with a tiny "hub" label partition
// the reorder pattern can anchor on.
func planBenchGraph(nodes, degree int, seed int64) (*memgraph.Graph, error) {
	g := memgraph.New()
	rng := rand.New(rand.NewSource(seed))
	hubs := nodes / 200
	if hubs < 2 {
		hubs = 2
	}
	ids := make([]model.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		label := "person"
		switch {
		case i < hubs:
			label = "hub"
		case i%7 == 0:
			label = "place"
		}
		id, err := g.AddNode(label, model.Props("rank", i%100))
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	for i := 0; i < nodes; i++ {
		for d := 0; d < degree; d++ {
			to := rng.Intn(nodes)
			if rng.Intn(4) == 0 {
				to = rng.Intn(hubs * 8)
			}
			if _, err := g.AddEdge("knows", ids[i], ids[to], nil); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < nodes/2; i++ {
		if _, err := g.AddEdge("near", ids[rng.Intn(nodes)], ids[rng.Intn(nodes)], nil); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// planBenchSpec renders one named pattern as a counting MatchSpec — the
// count aggregate forces full enumeration (what the planner order decides)
// without materializing row storage into the measurement.
func planBenchSpec(pattern string) (*plan.MatchSpec, error) {
	spec := &plan.MatchSpec{
		Limit: -1,
		Aggs:  []plan.AggItem{{Name: "n", Fn: "count"}},
	}
	switch pattern {
	case "triangle":
		spec.Nodes = []plan.NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}}
		spec.Edges = []plan.EdgePat{
			{From: 0, To: 1, Label: "knows", Dir: model.Out},
			{From: 1, To: 2, Label: "knows", Dir: model.Out},
			{From: 0, To: 2, Label: "knows", Dir: model.Out},
		}
	case "diamond":
		spec.Nodes = []plan.NodePat{{Var: "a"}, {Var: "b"}, {Var: "c"}, {Var: "d"}}
		spec.Edges = []plan.EdgePat{
			{From: 0, To: 1, Label: "knows", Dir: model.Out},
			{From: 0, To: 2, Label: "knows", Dir: model.Out},
			{From: 1, To: 3, Label: "knows", Dir: model.Out},
			{From: 2, To: 3, Label: "knows", Dir: model.Out},
		}
	case "reorder":
		// Both ends carry a label and one property, so the naive planner's
		// constraint-count heuristic ties and falls back to declaration
		// order — anchoring on the populous person partition. Cardinality
		// statistics see that hub{rank:0} is a near-singleton and anchor
		// there instead.
		spec.Nodes = []plan.NodePat{
			{Var: "a", Label: "person", Props: model.Props("rank", 0)},
			{Var: "b"},
			{Var: "c", Label: "hub", Props: model.Props("rank", 0)},
		}
		spec.Edges = []plan.EdgePat{
			{From: 0, To: 1, Label: "knows", Dir: model.Out},
			{From: 1, To: 2, Label: "knows", Dir: model.Out},
		}
	default:
		return nil, fmt.Errorf("unknown plan pattern %q (have: %v)", pattern, PlanPatterns)
	}
	return spec, nil
}

// RunPlanSweep times every requested pattern under the naive, cost-based,
// and worst-case-optimal planners on the same seeded graph, asserting all
// three return the same count before any timing is reported.
func RunPlanSweep(nodes, degree int, seed int64, patterns []string) (*PlanSweep, error) {
	g, err := planBenchGraph(nodes, degree, seed)
	if err != nil {
		return nil, err
	}
	st, err := g.PlanStats()
	if err != nil {
		return nil, err
	}
	src := plan.UnindexedSource{Graph: g}
	sweep := &PlanSweep{
		Stamp:  NewStamp(),
		Nodes:  nodes,
		Degree: degree,
		Seed:   seed,
		Note: "all planners run the same count query on the same graph and must agree " +
			"on the count before timing is recorded; speedup is naive_ns/ns on this host",
	}
	type planner struct {
		name    string
		compile func(*plan.MatchSpec) (plan.Op, error)
	}
	planners := []planner{
		{"naive", plan.Compile},
		{"cost", func(s *plan.MatchSpec) (plan.Op, error) {
			op, _, err := plan.Planner{Stats: st}.Compile(s)
			return op, err
		}},
		{"wco", func(s *plan.MatchSpec) (plan.Op, error) {
			op, _, err := plan.Planner{Stats: st, WCO: true}.Compile(s)
			return op, err
		}},
	}
	for _, pattern := range patterns {
		var patResults []PlanResult
		wantRows := int64(-1)
		for _, pl := range planners {
			spec, err := planBenchSpec(pattern)
			if err != nil {
				return nil, err
			}
			op, err := pl.compile(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", pattern, pl.name, err)
			}
			var count int64
			run := func() error {
				res, err := plan.Collect(op, src, []string{"n"})
				if err != nil {
					return err
				}
				c, ok := res.Rows[0][0].AsInt()
				if !ok {
					return fmt.Errorf("count is not an int: %v", res.Rows[0][0])
				}
				count = c
				return nil
			}
			ns, err := timeOp(run)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", pattern, pl.name, err)
			}
			if wantRows == -1 {
				wantRows = count
			} else if count != wantRows {
				return nil, fmt.Errorf("%s: planner %s counted %d, %s counted %d — refusing to report a speedup that changes the answer",
					pattern, pl.name, count, planners[0].name, wantRows)
			}
			patResults = append(patResults, PlanResult{
				Pattern: pattern,
				Planner: pl.name,
				Ns:      ns,
				Rows:    count,
				Plan:    op.String(),
			})
		}
		naiveNs := patResults[0].Ns
		for i := range patResults {
			patResults[i].Speedup = float64(naiveNs) / float64(patResults[i].Ns)
		}
		sweep.Results = append(sweep.Results, patResults...)
	}
	return sweep, nil
}

// WritePlanJSON writes the sweep to path through the vfs seam.
func WritePlanJSON(fsys vfs.FS, path string, sweep *PlanSweep) error {
	data, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	f, w, err := vfs.Create(fsys, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderPlan prints the sweep as a per-pattern planner table.
func RenderPlan(w io.Writer, sweep *PlanSweep) {
	fmt.Fprintf(w, "plan sweep: hub-skewed n=%d degree=%d seed=%d (gomaxprocs=%d)\n\n",
		sweep.Nodes, sweep.Degree, sweep.Seed, sweep.GoMaxProcs)
	pattern := ""
	for _, r := range sweep.Results {
		if r.Pattern != pattern {
			pattern = r.Pattern
			fmt.Fprintf(w, "%s (rows=%d)\n", pattern, r.Rows)
		}
		fmt.Fprintf(w, "  %-6s %12v  %6.2fx  %s\n",
			r.Planner, time.Duration(r.Ns).Round(time.Microsecond), r.Speedup, r.Plan)
	}
	fmt.Fprintf(w, "\n%s\n", sweep.Note)
}
