package report

import (
	"encoding/json"
	"strings"
	"testing"

	"gdbm/internal/storage/vfs"
)

// TestRunPlanSweep runs the full sweep small and checks the invariants the
// JSON consumers rely on: every pattern appears under all three planners,
// counts agree within a pattern, naive speedup is exactly 1, and at least
// one WCO plan actually contains the Intersect operator.
func TestRunPlanSweep(t *testing.T) {
	sweep, err := RunPlanSweep(400, 3, 7, PlanPatterns)
	if err != nil {
		t.Fatalf("RunPlanSweep: %v", err)
	}
	if got, want := len(sweep.Results), 3*len(PlanPatterns); got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}
	rows := map[string]int64{}
	sawIntersect := false
	for _, r := range sweep.Results {
		if r.Ns <= 0 {
			t.Errorf("%s/%s: non-positive time %d", r.Pattern, r.Planner, r.Ns)
		}
		if r.Planner == "naive" && r.Speedup != 1 {
			t.Errorf("%s: naive speedup %v, want 1", r.Pattern, r.Speedup)
		}
		if prev, ok := rows[r.Pattern]; ok && prev != r.Rows {
			t.Errorf("%s: planner %s counted %d, earlier planner counted %d", r.Pattern, r.Planner, r.Rows, prev)
		}
		rows[r.Pattern] = r.Rows
		if r.Planner == "wco" && strings.Contains(r.Plan, "Intersect") {
			sawIntersect = true
		}
	}
	if !sawIntersect {
		t.Errorf("no wco plan used Intersect; the sweep is not exercising the WCO operator")
	}
	for _, p := range PlanPatterns {
		if rows[p] == 0 {
			t.Errorf("pattern %s matched zero rows; the benchmark graph is too sparse to measure", p)
		}
	}

	var render strings.Builder
	RenderPlan(&render, sweep)
	for _, frag := range []string{"triangle", "diamond", "reorder", "naive", "wco"} {
		if !strings.Contains(render.String(), frag) {
			t.Errorf("rendering lacks %q:\n%s", frag, render.String())
		}
	}

	fs := vfs.NewFaultFS()
	if err := WritePlanJSON(fs, "BENCH_plan.json", sweep); err != nil {
		t.Fatalf("WritePlanJSON: %v", err)
	}
	f, err := fs.OpenFile("BENCH_plan.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	var back PlanSweep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	for _, frag := range []string{`"gomaxprocs"`, `"pattern"`, `"speedup_vs_naive"`, `"rows"`} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("JSON lacks %q", frag)
		}
	}
}

// TestPlanBenchSpecUnknown pins the error path -planpatterns validation
// relies on.
func TestPlanBenchSpecUnknown(t *testing.T) {
	if _, err := planBenchSpec("bogus"); err == nil {
		t.Fatalf("planBenchSpec(bogus) succeeded, want error")
	}
}
