package report

import (
	"bytes"
	"strings"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"

	_ "gdbm/internal/engines/bitmapdb"
	_ "gdbm/internal/engines/filamentdb"
	_ "gdbm/internal/engines/gstore"
	_ "gdbm/internal/engines/hyperdb"
	_ "gdbm/internal/engines/infinigraph"
	_ "gdbm/internal/engines/neograph"
	_ "gdbm/internal/engines/sonesdb"
	_ "gdbm/internal/engines/triplestore"
	_ "gdbm/internal/engines/vertexkv"
)

func openEngines(t *testing.T) []engine.Engine {
	t.Helper()
	var out []engine.Engine
	for _, name := range engine.Names() {
		opts := engine.Options{}
		if capability.NeedsDir(name) {
			opts.Dir = t.TempDir()
		}
		e, err := engine.Open(name, opts)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		t.Cleanup(func() { e.Close() })
		out = append(out, e)
	}
	return out
}

// The central reproduction claim: every regenerated table matches the
// paper's published matrix cell for cell.
func TestRegeneratedTablesMatchPaper(t *testing.T) {
	engines := openEngines(t)
	tables, err := AllTables(engines)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		for _, m := range Diff(tb) {
			t.Errorf("mismatch: %s", m)
		}
	}
}

func TestTableRowOrderMatchesPaper(t *testing.T) {
	engines := openEngines(t)
	tb := TableI(engines)
	want := []string{"AllegroGraph", "DEX", "Filament", "G-Store", "HyperGraphDB", "InfiniteGraph", "Neo4j", "Sones", "VertexDB"}
	if len(tb.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i, r := range tb.Rows {
		if r.Name != want[i] {
			t.Errorf("row %d = %s, want %s", i, r.Name, want[i])
		}
	}
}

func TestTableVIOnlyConstraintRows(t *testing.T) {
	engines := openEngines(t)
	tb := TableVI(engines)
	if len(tb.Rows) != 4 {
		t.Fatalf("Table VI rows = %d (want the 4 constraint-bearing systems)", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		switch r.Name {
		case "DEX", "HyperGraphDB", "InfiniteGraph", "Sones":
		default:
			t.Errorf("unexpected Table VI row %s", r.Name)
		}
	}
}

func TestRenderOutput(t *testing.T) {
	engines := openEngines(t)
	tb := TableI(engines)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "Neo4j") || !strings.Contains(out, "•") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestTableVIIIHasSixRows(t *testing.T) {
	tb := TableVIII()
	if len(tb.Rows) != 6 || len(tb.Cols) != 8 {
		t.Fatalf("Table VIII %dx%d", len(tb.Rows), len(tb.Cols))
	}
	// G+ supports shortest path; G does not.
	colIdx := -1
	for i, c := range tb.Cols {
		if c == "shortest path" {
			colIdx = i
		}
	}
	var g, gplus Row
	for _, r := range tb.Rows {
		if r.Name == "G" {
			g = r
		}
		if r.Name == "G+" {
			gplus = r
		}
	}
	if g.Cells[colIdx] != "" || gplus.Cells[colIdx] != "•" {
		t.Errorf("G/G+ shortest path cells: %q %q", g.Cells[colIdx], gplus.Cells[colIdx])
	}
}

func TestPerfSweepRuns(t *testing.T) {
	open := func(name string) (engine.Engine, error) {
		opts := engine.Options{}
		if capability.NeedsDir(name) {
			opts.Dir = t.TempDir()
		}
		return engine.Open(name, opts)
	}
	results, err := RunPerf(open, []string{"neograph", "vertexkv", "sonesdb"}, 300, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]int{}
	for _, r := range results {
		ops[r.Op]++
		if r.Took <= 0 {
			t.Errorf("non-positive timing for %s/%s", r.Engine, r.Op)
		}
	}
	if ops["ingest"] != 3 {
		t.Errorf("ingest results = %d", ops["ingest"])
	}
	// sonesdb has no khood/shortest; neograph and vertexkv have khood.
	if ops["2hop"] != 2 {
		t.Errorf("2hop results = %d", ops["2hop"])
	}
	if ops["shortest"] != 1 {
		t.Errorf("shortest results = %d", ops["shortest"])
	}
	var buf bytes.Buffer
	RenderPerf(&buf, results)
	if !strings.Contains(buf.String(), "operation ingest") {
		t.Errorf("perf render:\n%s", buf.String())
	}
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{TableID: "I", Row: "DEX", Col: "Indexes", Paper: "•", Ours: ""}
	s := m.String()
	if !strings.Contains(s, "DEX") || !strings.Contains(s, "(blank)") {
		t.Errorf("mismatch string = %q", s)
	}
}

// Provenance checks: the reconstructed tables must stay consistent with the
// OCR evidence recorded in EXPERIMENTS.md.
func TestTableVIIBulletCountsMatchOCR(t *testing.T) {
	engines := openEngines(t)
	tb, err := TableVII(engines)
	if err != nil {
		t.Fatal(err)
	}
	// Per-row mark counts extracted from the source text.
	want := map[string]int{
		"AllegroGraph": 3, "DEX": 5, "Filament": 3, "G-Store": 5,
		"HyperGraphDB": 2, "InfiniteGraph": 5, "Neo4j": 5, "Sones": 2,
		"VertexDB": 4,
	}
	for _, r := range tb.Rows {
		n := 0
		for _, c := range r.Cells {
			if c != "" {
				n++
			}
		}
		if n != want[r.Name] {
			t.Errorf("%s: %d marks, OCR shows %d", r.Name, n, want[r.Name])
		}
	}
}

func TestTableIIIProseConsistency(t *testing.T) {
	engines := openEngines(t)
	tb := TableIII(engines)
	col := func(name string) int {
		for i, c := range tb.Cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	hyper, nested, attr := col("Hypergraphs"), col("Nested graphs"), col("Attributed graphs")
	hyperRows, nestedRows, attrRows := 0, 0, 0
	for _, r := range tb.Rows {
		if r.Cells[hyper] != "" {
			hyperRows++
		}
		if r.Cells[nested] != "" {
			nestedRows++
		}
		if r.Cells[attr] != "" {
			attrRows++
		}
	}
	// "Only two support hypergraphs and no one nested graphs."
	if hyperRows != 2 {
		t.Errorf("hypergraph rows = %d, prose says 2", hyperRows)
	}
	if nestedRows != 0 {
		t.Errorf("nested rows = %d, prose says 0", nestedRows)
	}
	if attrRows != 4 {
		t.Errorf("attributed rows = %d (DEX, InfiniteGraph, Neo4j, Sones)", attrRows)
	}
}

func TestTableIVProseConsistency(t *testing.T) {
	engines := openEngines(t)
	tb := TableIV(engines)
	col := func(name string) int {
		for i, c := range tb.Cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	vn, sr := col("Value nodes"), col("Simple relations")
	// "Value nodes and simple relations are supported by all the models."
	for _, r := range tb.Rows {
		if r.Cells[vn] == "" || r.Cells[sr] == "" {
			t.Errorf("%s: missing value-node/simple-relation marks", r.Name)
		}
	}
}

func TestRenderParallelDegradedWarning(t *testing.T) {
	sweep := &ParallelSweep{
		Stamp:        Stamp{GoMaxProcs: 1, NumCPU: 1},
		DegradedHost: true,
		Note:         "n",
	}
	var buf bytes.Buffer
	RenderParallel(&buf, sweep)
	if !strings.Contains(buf.String(), "DEGRADED HOST") {
		t.Errorf("degraded sweep rendered without the warning:\n%s", buf.String())
	}

	buf.Reset()
	sweep.DegradedHost = false
	sweep.GoMaxProcs, sweep.NumCPU = 8, 8
	RenderParallel(&buf, sweep)
	if strings.Contains(buf.String(), "DEGRADED HOST") {
		t.Errorf("healthy sweep rendered with the warning:\n%s", buf.String())
	}
}
