package report

import (
	"os"
	"runtime"
)

// Stamp records the execution environment of a benchmark run. Every BENCH
// JSON embeds one, so numbers from different hosts are never compared as if
// they came from the same machine — the honesty rule the parallel sweep
// started (a single-core container cannot show parallel speedup, a loaded
// laptop cannot show stable p99s) applied uniformly.
type Stamp struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"goversion"`
	Host       string `json:"host"`
}

// NewStamp captures the current environment.
func NewStamp() Stamp {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return Stamp{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		Host:       host,
	}
}
