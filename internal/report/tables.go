// Package report regenerates the eight comparison tables of the survey from
// the living engines: Tables I–VI from each engine's (test-verified)
// feature profile, Table VII from executing the essential queries through
// each engine's public surface, and Table VIII from the executable past-
// language profiles. It also embeds the paper's published matrices so the
// harness can print a cell-by-cell diff (EXPERIMENTS.md's paper-vs-measured
// record).
package report

import (
	"fmt"
	"io"
	"strings"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/pastql"
)

// Table is a rendered comparison matrix.
type Table struct {
	ID    string // "I" .. "VIII"
	Title string
	Cols  []string
	Rows  []Row
}

// Row is one system's line.
type Row struct {
	Name  string
	Cells []string // "•", "◦" or ""
}

// Render prints the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "TABLE %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	nameW := len("Graph Database")
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	colW := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		colW[i] = len([]rune(c))
		if colW[i] < 3 {
			colW[i] = 3
		}
	}
	fmt.Fprintf(w, "%-*s", nameW+2, "Graph Database")
	for i, c := range t.Cols {
		fmt.Fprintf(w, " | %-*s", colW[i], c)
	}
	fmt.Fprintln(w)
	total := nameW + 2
	for _, cw := range colW {
		total += cw + 3
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", nameW+2, r.Name)
		for i := range t.Cols {
			cell := ""
			if i < len(r.Cells) {
				cell = r.Cells[i]
			}
			// Center the mark.
			pad := colW[i] - len([]rune(cell))
			left := pad / 2
			fmt.Fprintf(w, " | %s%s%s", strings.Repeat(" ", left), cell, strings.Repeat(" ", pad-left))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

// featureCell extracts one Features field by table column.
type featureCol struct {
	name string
	get  func(engine.Features) engine.Support
}

var tableICols = []featureCol{
	{"Main memory", func(f engine.Features) engine.Support { return f.MainMemory }},
	{"External memory", func(f engine.Features) engine.Support { return f.ExternalMemory }},
	{"Backend Storage", func(f engine.Features) engine.Support { return f.BackendStorage }},
	{"Indexes", func(f engine.Features) engine.Support { return f.Indexes }},
}

var tableIICols = []featureCol{
	{"Data Definition Lang.", func(f engine.Features) engine.Support { return f.DDL }},
	{"Data Manipulat. Lang.", func(f engine.Features) engine.Support { return f.DML }},
	{"Query Language", func(f engine.Features) engine.Support { return f.QueryLanguageShipped }},
	{"API", func(f engine.Features) engine.Support { return f.API }},
	{"GUI", func(f engine.Features) engine.Support { return f.GUI }},
}

var tableIIICols = []featureCol{
	{"Simple graphs", func(f engine.Features) engine.Support { return f.SimpleGraphs }},
	{"Hypergraphs", func(f engine.Features) engine.Support { return f.Hypergraphs }},
	{"Nested graphs", func(f engine.Features) engine.Support { return f.NestedGraphs }},
	{"Attributed graphs", func(f engine.Features) engine.Support { return f.AttributedGraphs }},
	{"Node labeled", func(f engine.Features) engine.Support { return f.NodeLabeled }},
	{"Node attribution", func(f engine.Features) engine.Support { return f.NodeAttributed }},
	{"Directed", func(f engine.Features) engine.Support { return f.Directed }},
	{"Edge labeled", func(f engine.Features) engine.Support { return f.EdgeLabeled }},
	{"Edge attribution", func(f engine.Features) engine.Support { return f.EdgeAttributed }},
}

var tableIVCols = []featureCol{
	{"Node types", func(f engine.Features) engine.Support { return f.SchemaNodeTypes }},
	{"Property types", func(f engine.Features) engine.Support { return f.SchemaPropertyTypes }},
	{"Relation types", func(f engine.Features) engine.Support { return f.SchemaRelationTypes }},
	{"Object nodes", func(f engine.Features) engine.Support { return f.ObjectNodes }},
	{"Value nodes", func(f engine.Features) engine.Support { return f.ValueNodes }},
	{"Complex nodes", func(f engine.Features) engine.Support { return f.ComplexNodes }},
	{"Object relations", func(f engine.Features) engine.Support { return f.ObjectRelations }},
	{"Simple relations", func(f engine.Features) engine.Support { return f.SimpleRelations }},
	{"Complex relations", func(f engine.Features) engine.Support { return f.ComplexRelations }},
}

var tableVCols = []featureCol{
	{"Query Lang.", func(f engine.Features) engine.Support { return f.QueryLanguage }},
	{"API", func(f engine.Features) engine.Support { return f.APIQueryFacility }},
	{"Graphical Q. L.", func(f engine.Features) engine.Support { return f.GraphicalQL }},
	{"Retrieval", func(f engine.Features) engine.Support { return f.Retrieval }},
	{"Reasoning", func(f engine.Features) engine.Support { return f.Reasoning }},
	{"Analysis", func(f engine.Features) engine.Support { return f.Analysis }},
}

var tableVICols = []featureCol{
	{"Types checking", func(f engine.Features) engine.Support { return f.TypesChecking }},
	{"Node/edge identity", func(f engine.Features) engine.Support { return f.NodeEdgeIdentity }},
	{"Referential integrity", func(f engine.Features) engine.Support { return f.ReferentialIntegrity }},
	{"Cardinality checking", func(f engine.Features) engine.Support { return f.CardinalityChecking }},
	{"Functional dependency", func(f engine.Features) engine.Support { return f.FunctionalDependencies }},
	{"Graph pattern", func(f engine.Features) engine.Support { return f.PatternConstraints }},
}

func featureTable(id, title string, cols []featureCol, engines []engine.Engine) *Table {
	t := &Table{ID: id, Title: title}
	for _, c := range cols {
		t.Cols = append(t.Cols, c.name)
	}
	for _, e := range engines {
		f := e.Features()
		row := Row{Name: e.SurveyRow()}
		for _, c := range cols {
			row.Cells = append(row.Cells, c.get(f).Mark())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableI builds the data-storing-features matrix.
func TableI(engines []engine.Engine) *Table {
	return featureTable("I", "Data storing features", tableICols, engines)
}

// TableII builds the operation/manipulation matrix.
func TableII(engines []engine.Engine) *Table {
	return featureTable("II", "Operation and manipulation features", tableIICols, engines)
}

// TableIII builds the graph data structures matrix.
func TableIII(engines []engine.Engine) *Table {
	return featureTable("III", "Graph data structures", tableIIICols, engines)
}

// TableIV builds the entities/relations representation matrix.
func TableIV(engines []engine.Engine) *Table {
	return featureTable("IV", "Representation of entities and relations", tableIVCols, engines)
}

// TableV builds the query facilities matrix.
func TableV(engines []engine.Engine) *Table {
	return featureTable("V", "Comparison of query facilities", tableVCols, engines)
}

// TableVI builds the integrity constraints matrix (only rows with at least
// one constraint, matching the paper's presentation).
func TableVI(engines []engine.Engine) *Table {
	t := featureTable("VI", "Comparison of integrity constraints", tableVICols, engines)
	var kept []Row
	for _, r := range t.Rows {
		empty := true
		for _, c := range r.Cells {
			if c != "" {
				empty = false
				break
			}
		}
		if !empty {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	return t
}

// TableVIICols names the essential-query columns.
var TableVIICols = []string{
	"Node/edge adjacency", "k-neighborhood", "Fixed-length paths",
	"Shortest path", "Pattern matching", "Summarization",
}

// TableVII executes the essential queries through each engine's surface on
// a freshly seeded probe graph; a cell is marked only when the operation is
// exposed AND returns the correct answer.
func TableVII(engines []engine.Engine) (*Table, error) {
	t := &Table{ID: "VII", Title: "Current graph databases and their support for essential graph queries", Cols: TableVIICols}
	for _, e := range engines {
		row := Row{Name: e.SurveyRow(), Cells: make([]string, len(TableVIICols))}
		ids, err := seedProbe(e)
		if err != nil {
			return nil, fmt.Errorf("%s: seed: %w", e.Name(), err)
		}
		es := e.Essentials()
		// Node/edge adjacency.
		if es.NodeAdjacency != nil {
			ok1, err1 := es.NodeAdjacency(ids[0], ids[1])
			ok2, err2 := es.NodeAdjacency(ids[0], ids[3])
			if err1 == nil && err2 == nil && ok1 && !ok2 {
				row.Cells[0] = engine.Yes.Mark()
			}
		}
		if es.KNeighborhood != nil {
			nb, err := es.KNeighborhood(ids[0], 1)
			if err == nil && contains(nb, ids[1]) && contains(nb, ids[4]) {
				row.Cells[1] = engine.Yes.Mark()
			}
		}
		if es.FixedLengthPaths != nil {
			ps, err := es.FixedLengthPaths(ids[0], ids[2], 2)
			if err == nil && len(ps) == 1 {
				row.Cells[2] = engine.Yes.Mark()
			}
		}
		if es.ShortestPath != nil {
			p, err := es.ShortestPath(ids[0], ids[3])
			if err == nil && p.Len() == 3 {
				row.Cells[3] = engine.Yes.Mark()
			}
		}
		if es.PatternMatching != nil {
			row.Cells[4] = engine.Yes.Mark()
		}
		if es.Summarization != nil {
			v, err := es.Summarization(algo.AggCount, "Thing", "")
			if err == nil {
				if n, ok := v.AsInt(); ok && n >= 5 {
					row.Cells[5] = engine.Yes.Mark()
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func contains(ids []model.NodeID, id model.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// seedProbe loads the probe chain+hub graph used by TableVII.
func seedProbe(e engine.Engine) ([]model.NodeID, error) {
	l, ok := e.(engine.Loader)
	if !ok {
		return nil, fmt.Errorf("engine %s has no loader", e.Name())
	}
	ids := make([]model.NodeID, 5)
	for i, nm := range []string{"n0", "n1", "n2", "n3", "hub"} {
		id, err := l.LoadNode("Thing", model.Props("name", nm, "rank", i))
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	for i := 0; i < 3; i++ {
		if _, err := l.LoadEdge("next", ids[i], ids[i+1], nil); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := l.LoadEdge("spoke", ids[4], ids[i], nil); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// TableVIII renders the past-language matrix from the executable profiles.
func TableVIII() *Table {
	cols := pastql.Columns()
	t := &Table{ID: "VIII", Title: "Past graph query languages and their support for essential graph queries"}
	for _, c := range cols {
		t.Cols = append(t.Cols, string(c))
	}
	for _, l := range pastql.Languages() {
		row := Row{Name: l.Name}
		for _, c := range cols {
			row.Cells = append(row.Cells, l.Marks[c].Mark())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AllTables regenerates every table against freshly opened engines.
func AllTables(engines []engine.Engine) ([]*Table, error) {
	t7, err := TableVII(engines)
	if err != nil {
		return nil, err
	}
	return []*Table{
		TableI(engines), TableII(engines), TableIII(engines),
		TableIV(engines), TableV(engines), TableVI(engines),
		t7, TableVIII(),
	}, nil
}
