package report

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/storage/vfs"
)

// TraceSpan is one completed span of a traced query, flattened for the
// JSON report. Depth 0 marks top-level spans: their durations partition
// the query's wall time, so summing them accounts for where the time went.
type TraceSpan struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// TraceQuery is one traced statement execution: its spans in completion
// order, the per-query deltas of the engine's metric counters (pages read,
// WAL syncs, adjacency scans, ...) plus any counters the trace itself
// accumulated (worker-pool queue wait), and the one-line slow-log record.
type TraceQuery struct {
	Engine    string           `json:"engine"`
	Language  string           `json:"language"`
	Query     string           `json:"query"`
	Rows      int              `json:"rows"`
	WallNs    int64            `json:"wall_ns"`
	SpanSumNs int64            `json:"span_sum_ns"` // sum of depth-0 span durations
	Spans     []TraceSpan      `json:"spans"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Record    string           `json:"record"`
}

// TraceSweep is the full traced-query report across engines.
type TraceSweep struct {
	Nodes  int   `json:"nodes"`
	Degree int   `json:"degree"`
	Seed   int64 `json:"seed"`
	Stamp
	Note    string       `json:"note"`
	Queries []TraceQuery `json:"queries"`
}

// traceStatements returns a small read-only workload in the engine's query
// language over the generator's graph shape (nodes labeled N with an int
// property idx, edges labeled link).
func traceStatements(lang string, ids []model.NodeID) []string {
	if len(ids) == 0 {
		return nil
	}
	switch lang {
	case "gql":
		return []string{
			`MATCH (a:N) WHERE a.idx < 8 RETURN a.idx AS i ORDER BY i`,
			`MATCH (a:N)-[:link]->(b) RETURN count(*) AS n`,
		}
	case "gsql":
		return []string{
			`SELECT ORDER`,
			fmt.Sprintf(`SELECT NEIGHBORS OF %d DEPTH 2`, ids[0]),
			fmt.Sprintf(`SELECT DEGREE OF %d`, ids[len(ids)/2]),
		}
	case "sparqlish":
		return []string{
			`SELECT ?x WHERE { ?x <type> "N" . } LIMIT 8`,
			`SELECT ?o WHERE { ?s <link> ?o . } LIMIT 8`,
		}
	}
	return nil
}

// RunTraceSweep ingests the same R-MAT graph into each engine and runs a
// small read-only workload in its query language with a fresh trace per
// statement. Engines without a query language are skipped. open returns
// the engine together with the metrics registry it was opened with (nil is
// fine — the sweep then reports spans only); per-query counter deltas are
// attributed by differencing the registry around each statement. Every
// finished trace is offered to slow (nil means no slow log). Engines are
// closed before return.
func RunTraceSweep(open func(name string) (engine.Engine, *obs.Registry, error),
	names []string, nodes, degree int, seed int64, slow *obs.SlowLog) (*TraceSweep, error) {
	sweep := &TraceSweep{
		Nodes:  nodes,
		Degree: degree,
		Seed:   seed,
		Stamp:  NewStamp(),
		Note: "span_sum_ns sums the depth-0 spans, which partition the traced wall " +
			"time; counters are per-query deltas of the engine's metrics registry " +
			"plus the trace's own counters (worker-pool queue wait)",
	}
	spec := gen.Spec{Kind: gen.RMAT, Nodes: nodes, EdgesPerNode: degree, Seed: seed}
	for _, name := range names {
		e, reg, err := open(name)
		if err != nil {
			return nil, fmt.Errorf("trace open %s: %w", name, err)
		}
		err = func() error {
			q, ok := e.(engine.Querier)
			if !ok {
				return nil // API-only archetype: nothing to trace at the language level
			}
			ids, err := ingest(e, spec)
			if err != nil {
				return err
			}
			for _, stmt := range traceStatements(q.LanguageName(), ids) {
				tq, err := traceOne(e, q, stmt, reg, slow)
				if err != nil {
					return fmt.Errorf("%s: %q: %w", name, stmt, err)
				}
				sweep.Queries = append(sweep.Queries, tq)
			}
			return nil
		}()
		e.Close()
		if err != nil {
			return nil, err
		}
	}
	return sweep, nil
}

// traceOne runs one statement under a fresh trace and folds the registry's
// counter deltas into it before the slow log observes it.
func traceOne(e engine.Engine, q engine.Querier, stmt string, reg *obs.Registry, slow *obs.SlowLog) (TraceQuery, error) {
	before := reg.Counters()
	tr := obs.New(stmt)
	res, err := engine.QueryContext(obs.WithTrace(context.Background(), tr), q, stmt)
	wall := tr.Finish()
	if err != nil {
		return TraceQuery{}, err
	}
	for k, v := range reg.Counters() {
		tr.Add(k, int64(v-before[k]))
	}
	if err := slow.Observe(tr); err != nil {
		return TraceQuery{}, fmt.Errorf("slow log: %w", err)
	}
	tq := TraceQuery{
		Engine:   e.Name(),
		Language: q.LanguageName(),
		Query:    stmt,
		Rows:     len(res.Rows),
		WallNs:   wall.Nanoseconds(),
		Counters: tr.Counters(),
		Record:   tr.Record(),
	}
	for _, s := range tr.Spans() {
		tq.Spans = append(tq.Spans, TraceSpan{
			Name: s.Name, Depth: s.Depth,
			StartNs: s.Start.Nanoseconds(), DurNs: s.Dur.Nanoseconds(),
		})
		if s.Depth == 0 {
			tq.SpanSumNs += s.Dur.Nanoseconds()
		}
	}
	return tq, nil
}

// WriteTraceJSON writes the sweep to path through the vfs seam.
func WriteTraceJSON(fsys vfs.FS, path string, sweep *TraceSweep) error {
	data, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	f, w, err := vfs.Create(fsys, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderTrace prints the sweep one query per block: wall time, the share
// of it the depth-0 spans account for, the span tree and the counters.
func RenderTrace(w io.Writer, sweep *TraceSweep) {
	fmt.Fprintf(w, "trace sweep: R-MAT n=%d degree=%d seed=%d\n\n", sweep.Nodes, sweep.Degree, sweep.Seed)
	eng := ""
	for _, q := range sweep.Queries {
		if q.Engine != eng {
			eng = q.Engine
			fmt.Fprintf(w, "%s (%s)\n", eng, q.Language)
		}
		accounted := 0.0
		if q.WallNs > 0 {
			accounted = 100 * float64(q.SpanSumNs) / float64(q.WallNs)
		}
		fmt.Fprintf(w, "  %-60q wall %10v  spans account for %5.1f%%\n",
			q.Query, time.Duration(q.WallNs).Round(time.Microsecond), accounted)
		for _, s := range q.Spans {
			fmt.Fprintf(w, "    %*sspan %-8s %10v\n", 2*s.Depth, "", s.Name,
				time.Duration(s.DurNs).Round(time.Microsecond))
		}
		fmt.Fprintf(w, "    %s\n", q.Record)
	}
	fmt.Fprintf(w, "\n%s\n", sweep.Note)
}
