package report

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/obs"
	"gdbm/internal/storage/vfs"

	_ "gdbm/internal/engines/gstore"
	_ "gdbm/internal/engines/sonesdb"
	_ "gdbm/internal/engines/triplestore"
)

// traceSlack bounds the wall time a traced query may spend outside its
// depth-0 spans (trace construction, dispatch overhead, scheduler noise).
const traceSlack = 25 * time.Millisecond

func traceOpen(t *testing.T) func(string) (engine.Engine, *obs.Registry, error) {
	t.Helper()
	return func(name string) (engine.Engine, *obs.Registry, error) {
		reg := obs.NewRegistry()
		opts := engine.Options{Metrics: reg}
		if name == "gstore" || name == "neograph" {
			opts.Dir = t.TempDir()
		}
		e, err := engine.Open(name, opts)
		return e, reg, err
	}
}

// TestTraceSweepAccountsWallTime is the acceptance property of the traced
// sweep: every traced query carries spans, and the depth-0 spans partition
// the reported wall time — their sum never exceeds it, and the residue
// outside them stays within slack.
func TestTraceSweepAccountsWallTime(t *testing.T) {
	names := []string{"neograph", "gstore", "triplestore", "sonesdb"}
	sweep, err := RunTraceSweep(traceOpen(t), names, 300, 2, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	perEngine := map[string]int{}
	for _, q := range sweep.Queries {
		perEngine[q.Engine]++
		if len(q.Spans) == 0 {
			t.Errorf("%s %q: traced query has no spans", q.Engine, q.Query)
			continue
		}
		if q.SpanSumNs > q.WallNs {
			t.Errorf("%s %q: depth-0 spans sum to %d ns, more than the %d ns wall",
				q.Engine, q.Query, q.SpanSumNs, q.WallNs)
		}
		if residue := time.Duration(q.WallNs - q.SpanSumNs); residue > traceSlack {
			t.Errorf("%s %q: %v of wall time unaccounted for by depth-0 spans (slack %v)",
				q.Engine, q.Query, residue, traceSlack)
		}
		// The engine dispatch span is always present and top-level.
		found := false
		for _, s := range q.Spans {
			if s.Name == "query" && s.Depth == 0 {
				found = true
			}
			if s.DurNs < 0 || s.StartNs < 0 {
				t.Errorf("%s %q: negative span timing %+v", q.Engine, q.Query, s)
			}
		}
		if !found {
			t.Errorf("%s %q: no depth-0 \"query\" span in %+v", q.Engine, q.Query, q.Spans)
		}
		if !strings.Contains(q.Record, "trace=") || !strings.Contains(q.Record, "wall_ns=") {
			t.Errorf("%s %q: malformed record %q", q.Engine, q.Query, q.Record)
		}
	}
	for _, name := range names {
		if perEngine[name] < 2 {
			t.Errorf("%s: only %d traced queries, want at least 2", name, perEngine[name])
		}
	}
}

// TestTraceSweepAttributesStorageCounters checks the per-query metric
// deltas: a disk-backed engine's query workload must charge storage-tier
// reads to at least one of its traced queries.
func TestTraceSweepAttributesStorageCounters(t *testing.T) {
	sweep, err := RunTraceSweep(traceOpen(t), []string{"neograph"}, 300, 2, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	charged := false
	for _, q := range sweep.Queries {
		if q.Counters["kvgraph.node_reads"] > 0 || q.Counters["kvgraph.adj_scans"] > 0 {
			charged = true
		}
	}
	if !charged {
		t.Error("no traced neograph query was charged any kvgraph reads")
	}
}

// TestTraceSweepSkipsAPIOnlyEngines: engines without a query language
// contribute no queries but do not fail the sweep.
func TestTraceSweepSkipsAPIOnlyEngines(t *testing.T) {
	open := func(name string) (engine.Engine, *obs.Registry, error) {
		e, err := engine.Open(name, engine.Options{})
		return e, nil, err
	}
	sweep, err := RunTraceSweep(open, []string{"filamentdb"}, 100, 2, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Queries) != 0 {
		t.Fatalf("API-only engine produced queries: %+v", sweep.Queries)
	}
}

// TestTraceSweepSlowLogAndJSON exercises the slow log (threshold zero
// records everything) and the JSON/render surfaces.
func TestTraceSweepSlowLogAndJSON(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "slow.log")
	slow, err := obs.OpenSlowLog(vfs.OSFS, logPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := RunTraceSweep(traceOpen(t), []string{"sonesdb"}, 200, 2, 7, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.OSFS.OpenFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := vfs.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	lines := strings.Split(strings.TrimSpace(string(buf[:n])), "\n")
	if len(lines) != len(sweep.Queries) {
		t.Fatalf("slow log has %d lines for %d traced queries:\n%s", len(lines), len(sweep.Queries), buf[:n])
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "trace=") || !strings.Contains(line, "span=query@0:") {
			t.Errorf("malformed slow-log line %q", line)
		}
	}

	jsonPath := filepath.Join(dir, "trace.json")
	if err := WriteTraceJSON(vfs.OSFS, jsonPath, sweep); err != nil {
		t.Fatal(err)
	}
	jf, err := vfs.OSFS.OpenFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	jr, err := vfs.NewReader(jf)
	if err != nil {
		t.Fatal(err)
	}
	jbuf := make([]byte, 1<<18)
	jn, _ := jr.Read(jbuf)
	var decoded TraceSweep
	if err := json.Unmarshal(jbuf[:jn], &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(decoded.Queries) != len(sweep.Queries) {
		t.Fatalf("JSON round-trip lost queries: %d != %d", len(decoded.Queries), len(sweep.Queries))
	}

	var rendered bytes.Buffer
	RenderTrace(&rendered, sweep)
	for _, want := range []string{"trace sweep", "span", "wall", "account"} {
		if !strings.Contains(rendered.String(), want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, rendered.String())
		}
	}
}
