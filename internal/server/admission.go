package server

import (
	"context"
	"time"

	"gdbm/internal/obs"
)

// Class names an SLO class. Interactive requests are latency-sensitive and
// get small queues and tight deadlines; batch requests tolerate queueing in
// exchange for throughput.
type Class string

const (
	Interactive Class = "interactive"
	Batch       Class = "batch"
)

// ParseClass maps a request's class field to a Class, defaulting to
// Interactive for the empty string and rejecting unknown names.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", string(Interactive):
		return Interactive, true
	case string(Batch):
		return Batch, true
	}
	return "", false
}

// ClassConfig sizes one class's admission path.
type ClassConfig struct {
	// Rate is the sustained admission rate in requests/second.
	Rate float64
	// Burst is the token-bucket depth: how far above Rate a short spike
	// may go before shedding starts.
	Burst int
	// MaxInflight bounds concurrently executing requests.
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot.
	MaxQueue int
	// Deadline caps per-request execution time; requests may ask for less
	// but never more. Zero means no cap.
	Deadline time.Duration
}

// Shed is a rejection verdict: why a request was not admitted and how long
// the client should wait before retrying.
type Shed struct {
	// Reason is "rate" (token bucket empty) or "queue" (waiting room full).
	Reason string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// admission is one class's gate chain plus its metrics. Metrics ride the
// shared obs.Registry under server.<class>.*.
type admission struct {
	class  Class
	cfg    ClassConfig
	bucket *Bucket
	gate   *Gate
	now    func() time.Time

	offered   *obs.Counter
	admitted  *obs.Counter
	shedRate  *obs.Counter
	shedQueue *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	timeouts  *obs.Counter
	inflight  *obs.Gauge
	queued    *obs.Gauge
	latency   *obs.Histogram
}

// queueRetryAfter is the Retry-After hint for queue-full sheds; the queue
// drains at execution speed, not at a token rate, so the hint is a fixed
// short backoff rather than a bucket computation.
const queueRetryAfter = 250 * time.Millisecond

func newAdmission(class Class, cfg ClassConfig, m *obs.Registry, now func() time.Time) *admission {
	p := "server." + string(class) + "."
	return &admission{
		class:     class,
		cfg:       cfg,
		bucket:    NewBucket(cfg.Rate, cfg.Burst),
		gate:      NewGate(cfg.MaxInflight, cfg.MaxQueue),
		now:       now,
		offered:   m.Counter(p + "offered"),
		admitted:  m.Counter(p + "admitted"),
		shedRate:  m.Counter(p + "shed_rate"),
		shedQueue: m.Counter(p + "shed_queue"),
		completed: m.Counter(p + "completed"),
		failed:    m.Counter(p + "failed"),
		timeouts:  m.Counter(p + "timeout"),
		inflight:  m.Gauge(p + "inflight"),
		queued:    m.Gauge(p + "queued"),
		latency:   m.Histogram(p + "latency_ns"),
	}
}

// Admit runs the admission chain for one request: token bucket first (cheap,
// sheds sustained overload), then the bounded gate (sheds concurrency
// overload). On admit it returns a non-nil done function the caller must
// call exactly once with the request outcome. On shed it returns a verdict.
// err is non-nil only when ctx aborted while queued.
func (a *admission) Admit(ctx context.Context) (done func(outcome string), shed *Shed, err error) {
	a.offered.Inc()
	if ok, retry := a.bucket.Take(a.now()); !ok {
		a.shedRate.Inc()
		return nil, &Shed{Reason: "rate", RetryAfter: retry}, nil
	}
	a.queued.Set(int64(a.gate.Queued() + 1))
	release, ok, err := a.gate.Enter(ctx)
	a.queued.Set(int64(a.gate.Queued()))
	if err != nil {
		a.failed.Inc()
		return nil, nil, err
	}
	if !ok {
		a.shedQueue.Inc()
		return nil, &Shed{Reason: "queue", RetryAfter: queueRetryAfter}, nil
	}
	a.admitted.Inc()
	a.inflight.Set(int64(a.gate.Inflight()))
	start := a.now()
	return func(outcome string) {
		release()
		a.inflight.Set(int64(a.gate.Inflight()))
		a.latency.Observe(int64(a.now().Sub(start)))
		switch outcome {
		case "ok":
			a.completed.Inc()
		case "timeout":
			a.timeouts.Inc()
		default:
			a.failed.Inc()
		}
	}, nil, nil
}
