package server

import (
	"context"
	"time"

	"gdbm/internal/obs"
)

// Class names an SLO class. Interactive requests are latency-sensitive and
// get small queues and tight deadlines; batch requests tolerate queueing in
// exchange for throughput.
type Class string

const (
	Interactive Class = "interactive"
	Batch       Class = "batch"
)

// ParseClass maps a request's class field to a Class, defaulting to
// Interactive for the empty string and rejecting unknown names.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", string(Interactive):
		return Interactive, true
	case string(Batch):
		return Batch, true
	}
	return "", false
}

// ClassConfig sizes one class's admission path.
type ClassConfig struct {
	// Rate is the sustained admission rate in requests/second.
	Rate float64
	// Burst is the token-bucket depth: how far above Rate a short spike
	// may go before shedding starts.
	Burst int
	// MaxInflight is this class's contribution to the shared execution-slot
	// pool. Slots are pooled across classes and divided by Weight, so this
	// is a sizing input, not a per-class ceiling.
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot.
	MaxQueue int
	// Weight is this class's share of the pooled execution slots while it
	// is backlogged: a class with weight w gets w/Σweights of contested
	// dispatches. Values below 1 are clamped to 1.
	Weight float64
	// Deadline caps per-request execution time; requests may ask for less
	// but never more. Zero means no cap.
	Deadline time.Duration
}

// Shed is a rejection verdict: why a request was not admitted and how long
// the client should wait before retrying.
type Shed struct {
	// Reason is "rate" (token bucket empty) or "queue" (waiting room full).
	Reason string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// admission is one class's admission chain plus its metrics: a per-class
// token bucket for rate shedding in front of the shared weighted-fair
// scheduler for concurrency. Metrics ride the shared obs.Registry under
// server.<class>.*.
type admission struct {
	class  Class
	cfg    ClassConfig
	bucket *Bucket
	sched  *sched
	now    func() time.Time

	offered   *obs.Counter
	admitted  *obs.Counter
	shedRate  *obs.Counter
	shedQueue *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	timeouts  *obs.Counter
	inflight  *obs.Gauge
	queued    *obs.Gauge
	latency   *obs.Histogram
}

// queueRetryAfter is the Retry-After hint for queue-full sheds; the queue
// drains at execution speed, not at a token rate, so the hint is a fixed
// short backoff rather than a bucket computation.
const queueRetryAfter = 250 * time.Millisecond

func newAdmission(class Class, cfg ClassConfig, sc *sched, m *obs.Registry, now func() time.Time) *admission {
	p := "server." + string(class) + "."
	return &admission{
		class:     class,
		cfg:       cfg,
		bucket:    NewBucket(cfg.Rate, cfg.Burst),
		sched:     sc,
		now:       now,
		offered:   m.Counter(p + "offered"),
		admitted:  m.Counter(p + "admitted"),
		shedRate:  m.Counter(p + "shed_rate"),
		shedQueue: m.Counter(p + "shed_queue"),
		completed: m.Counter(p + "completed"),
		failed:    m.Counter(p + "failed"),
		timeouts:  m.Counter(p + "timeout"),
		inflight:  m.Gauge(p + "inflight"),
		queued:    m.Gauge(p + "queued"),
		latency:   m.Histogram(p + "latency_ns"),
	}
}

// Admit runs the admission chain for one request: token bucket first (cheap,
// sheds sustained overload), then the shared weighted-fair scheduler (sheds
// concurrency overload, divides contested slots by class weight). On admit
// it returns a non-nil done function the caller must call exactly once with
// the request outcome. On shed it returns a verdict. err is non-nil only
// when ctx aborted while queued.
func (a *admission) Admit(ctx context.Context) (done func(outcome string), shed *Shed, err error) {
	a.offered.Inc()
	if ok, retry := a.bucket.Take(a.now()); !ok {
		a.shedRate.Inc()
		return nil, &Shed{Reason: "rate", RetryAfter: retry}, nil
	}
	a.queued.Set(int64(a.sched.Queued(a.class) + 1))
	release, ok, err := a.sched.Enter(ctx, a.class)
	a.queued.Set(int64(a.sched.Queued(a.class)))
	if err != nil {
		a.failed.Inc()
		return nil, nil, err
	}
	if !ok {
		a.shedQueue.Inc()
		return nil, &Shed{Reason: "queue", RetryAfter: queueRetryAfter}, nil
	}
	a.admitted.Inc()
	a.inflight.Set(int64(a.sched.ClassInflight(a.class)))
	start := a.now()
	return func(outcome string) {
		release()
		a.inflight.Set(int64(a.sched.ClassInflight(a.class)))
		a.latency.Observe(int64(a.now().Sub(start)))
		switch outcome {
		case "ok":
			a.completed.Inc()
		case "timeout":
			a.timeouts.Inc()
		default:
			a.failed.Inc()
		}
	}, nil, nil
}
