package server

import (
	"context"
	"testing"
	"time"

	"gdbm/internal/obs"
)

// schedFor wires a shared scheduler for a pair of class configs, the same
// way Server.New does: pooled slots sized by summed MaxInflight.
func schedFor(inter, batch ClassConfig) *sched {
	return newSched(inter.MaxInflight+batch.MaxInflight,
		[]Class{Interactive, Batch},
		map[Class]classSched{
			Interactive: {Weight: inter.Weight, MaxQueue: inter.MaxQueue},
			Batch:       {Weight: batch.Weight, MaxQueue: batch.MaxQueue},
		})
}

// TestAdmissionClassIsolation: exhausting one class's rate bucket must not
// shed the other class — each class owns its bucket and metrics, and the
// shared slot pool is wide enough for both here.
func TestAdmissionClassIsolation(t *testing.T) {
	c := newClock()
	m := obs.NewRegistry()
	interCfg := ClassConfig{Rate: 1, Burst: 1, MaxInflight: 1, MaxQueue: 0}
	batchCfg := ClassConfig{Rate: 100, Burst: 10, MaxInflight: 4, MaxQueue: 4}
	sc := schedFor(interCfg, batchCfg)
	inter := newAdmission(Interactive, interCfg, sc, m, c.Now)
	batch := newAdmission(Batch, batchCfg, sc, m, c.Now)

	// Exhaust interactive: one admit (hold the slot), then rate-shed.
	done1, shed, err := inter.Admit(context.Background())
	if err != nil || shed != nil || done1 == nil {
		t.Fatalf("first interactive admit: done=%v shed=%v err=%v", done1 != nil, shed, err)
	}
	_, shed, _ = inter.Admit(context.Background())
	if shed == nil || shed.Reason != "rate" {
		t.Fatalf("second interactive admit: want rate shed, got %+v", shed)
	}

	// Batch still admits freely.
	for i := 0; i < 4; i++ {
		doneB, shedB, errB := batch.Admit(context.Background())
		if doneB == nil || shedB != nil || errB != nil {
			t.Fatalf("batch admit %d alongside starved interactive: shed=%v err=%v", i, shedB, errB)
		}
		doneB("ok")
	}
	done1("ok")

	counters := m.Counters()
	if got := counters["server.interactive.shed_rate"]; got != 1 {
		t.Errorf("interactive shed_rate counter: %d, want 1", got)
	}
	if got := counters["server.batch.shed_rate"] + counters["server.batch.shed_queue"]; got != 0 {
		t.Errorf("batch sheds: %d, want 0", got)
	}
	if got := counters["server.batch.completed"]; got != 4 {
		t.Errorf("batch completed: %d, want 4", got)
	}
}

// TestAdmissionQueueShed: with the bucket generous and the slot pool full,
// the shed reason is "queue" and carries a positive Retry-After.
func TestAdmissionQueueShed(t *testing.T) {
	c := newClock()
	m := obs.NewRegistry()
	cfg := ClassConfig{Rate: 1000, Burst: 1000, MaxInflight: 1, MaxQueue: 0}
	a := newAdmission(Interactive, cfg, schedFor(cfg, ClassConfig{}), m, c.Now)

	done, _, _ := a.Admit(context.Background())
	if done == nil {
		t.Fatal("first admit")
	}
	_, shed, err := a.Admit(context.Background())
	if err != nil || shed == nil || shed.Reason != "queue" {
		t.Fatalf("gate-full admit: shed=%+v err=%v, want queue shed", shed, err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("queue shed Retry-After: %v, want > 0", shed.RetryAfter)
	}
	done("ok")
	if got := m.Counters()["server.interactive.shed_queue"]; got != 1 {
		t.Errorf("shed_queue counter: %d, want 1", got)
	}
}

// TestAdmissionRefillUnderFakeClock: rate sheds stop once the fake clock
// advances far enough to refill the bucket.
func TestAdmissionRefillUnderFakeClock(t *testing.T) {
	c := newClock()
	m := obs.NewRegistry()
	cfg := ClassConfig{Rate: 10, Burst: 1, MaxInflight: 4, MaxQueue: 4}
	a := newAdmission(Batch, cfg, schedFor(ClassConfig{}, cfg), m, c.Now)

	done, _, _ := a.Admit(context.Background())
	done("ok")
	if _, shed, _ := a.Admit(context.Background()); shed == nil {
		t.Fatal("drained bucket must shed")
	}
	c.Advance(100 * time.Millisecond) // one token at 10/s
	done2, shed, err := a.Admit(context.Background())
	if done2 == nil || shed != nil || err != nil {
		t.Fatalf("admit after refill: shed=%v err=%v", shed, err)
	}
	done2("timeout")
	counters := m.Counters()
	if got := counters["server.batch.timeout"]; got != 1 {
		t.Errorf("timeout counter: %d, want 1", got)
	}
	if got := counters["server.batch.admitted"]; got != 2 {
		t.Errorf("admitted counter: %d, want 2", got)
	}
	if got := counters["server.batch.offered"]; got != 3 {
		t.Errorf("offered counter: %d, want 3", got)
	}
}
