// Package server is the overload-safety substrate of the networked query
// service: token-bucket admission per SLO class, a bounded concurrency gate
// that rejects rather than queues without bound, request deadlines threaded
// into the engines, and a graceful drain protocol. The design goal is the
// overload contract of DESIGN.md: under any offered load the server sheds
// explicitly (429 + Retry-After) instead of collapsing, and goodput at 2×
// capacity stays within a constant factor of goodput at capacity.
package server

import (
	"sync"
	"time"
)

// Bucket is a token bucket: capacity burst, refilled at rate tokens/second.
// A request takes one token; an empty bucket answers with the wait until a
// token accrues, which becomes the Retry-After hint. The zero value is
// unusable — use NewBucket.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// MinRate is the floor NewBucket clamps rate to. A zero, negative or NaN
// rate (reachable through the -rate flags) would never refill and make the
// Retry-After computation divide by zero; the clamp keeps the bucket
// well-defined — it still sheds essentially everything past the burst, but
// with a finite retry hint.
const MinRate = 1e-3

// NewBucket returns a full bucket. rate is clamped to at least MinRate and
// burst to at least 1, so a fresh bucket always admits one request.
func NewBucket(rate float64, burst int) *Bucket {
	if !(rate >= MinRate) { // also catches NaN
		rate = MinRate
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Bucket{rate: rate, burst: b, tokens: b}
}

// Take attempts to remove one token at time now. It returns ok=true when a
// token was available, otherwise ok=false and the duration after which one
// token will have accrued (the Retry-After hint). now must be monotonically
// non-decreasing per bucket; the clock is a parameter so tests drive it.
func (b *Bucket) Take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// Tokens reports the current token count after refilling to now, for tests
// and statsz.
func (b *Bucket) Tokens(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		return b.tokens
	}
	t := b.tokens + now.Sub(b.last).Seconds()*b.rate
	if t > b.burst {
		t = b.burst
	}
	return t
}
