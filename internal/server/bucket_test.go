package server

import (
	"math"
	"testing"
	"time"
)

// clock is a fake time source tests advance by hand.
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *clock) Now() time.Time { return c.t }

func (c *clock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBucketBurstThenShed(t *testing.T) {
	c := newClock()
	b := NewBucket(10, 5) // 10/s sustained, burst of 5

	// The full burst admits back to back.
	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(c.Now()); !ok {
			t.Fatalf("take %d of burst: shed", i)
		}
	}
	// The sixth sheds, with a Retry-After of one token at 10/s = 100ms.
	ok, retry := b.Take(c.Now())
	if ok {
		t.Fatal("take beyond burst: admitted")
	}
	if retry != 100*time.Millisecond {
		t.Fatalf("retry after: got %v, want 100ms", retry)
	}
}

func TestBucketRefill(t *testing.T) {
	c := newClock()
	b := NewBucket(10, 5)
	for i := 0; i < 5; i++ {
		b.Take(c.Now())
	}
	// 250ms accrues 2.5 tokens: two admits, then a shed wanting 50ms more.
	c.Advance(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(c.Now()); !ok {
			t.Fatalf("take %d after refill: shed", i)
		}
	}
	ok, retry := b.Take(c.Now())
	if ok {
		t.Fatal("third take after 250ms refill: admitted")
	}
	if retry != 50*time.Millisecond {
		t.Fatalf("retry after partial token: got %v, want 50ms", retry)
	}
}

func TestBucketCapsAtBurst(t *testing.T) {
	c := newClock()
	b := NewBucket(10, 5)
	// A long idle period must not bank more than the burst.
	c.Advance(time.Hour)
	if got := b.Tokens(c.Now()); got != 5 {
		t.Fatalf("tokens after idle hour: %v, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(c.Now()); !ok {
			t.Fatalf("take %d: shed", i)
		}
	}
	if ok, _ := b.Take(c.Now()); ok {
		t.Fatal("burst cap not enforced")
	}
}

// TestBucketNoStarvation: a steady arrival at exactly the sustained rate is
// never shed once the bucket is in steady state, whatever the burst was.
func TestBucketNoStarvation(t *testing.T) {
	c := newClock()
	b := NewBucket(10, 1)
	b.Take(c.Now())
	for i := 0; i < 100; i++ {
		c.Advance(100 * time.Millisecond) // exactly one token
		if ok, retry := b.Take(c.Now()); !ok {
			t.Fatalf("arrival %d at sustained rate shed (retry %v)", i, retry)
		}
	}
}

func TestBucketMinimumBurst(t *testing.T) {
	c := newClock()
	b := NewBucket(10, 0) // clamped to burst 1
	if ok, _ := b.Take(c.Now()); !ok {
		t.Fatal("fresh bucket with clamped burst must admit one request")
	}
}

// TestBucketClampsRate: zero, negative and NaN rates (reachable via the
// -rate flags) are clamped to MinRate, so a drained bucket answers a
// finite, positive Retry-After instead of Inf/overflow.
func TestBucketClampsRate(t *testing.T) {
	for _, rate := range []float64{0, -5, math.NaN()} {
		c := newClock()
		b := NewBucket(rate, 1)
		if ok, _ := b.Take(c.Now()); !ok {
			t.Fatalf("rate %v: fresh bucket must admit its burst", rate)
		}
		ok, retry := b.Take(c.Now())
		if ok {
			t.Fatalf("rate %v: drained bucket admitted", rate)
		}
		want := time.Duration(float64(time.Second) / MinRate)
		if retry <= 0 || retry > want {
			t.Fatalf("rate %v: retry %v, want in (0, %v]", rate, retry, want)
		}
		// The clamped bucket still refills.
		c.Advance(retry)
		if ok, _ := b.Take(c.Now()); !ok {
			t.Fatalf("rate %v: bucket never refilled after clamp", rate)
		}
	}
}
