package server

import (
	"context"
	"sync"
)

// Gate bounds concurrent work: at most maxInflight requests execute and at
// most maxQueue more wait for a slot. Requests beyond both bounds are
// rejected immediately — the gate never grows a goroutine backlog, which is
// the failure mode bounded queues exist to prevent. The zero value is
// unusable — use NewGate.
type Gate struct {
	slots chan struct{} // capacity maxInflight; a held token = executing

	mu       sync.Mutex
	queued   int
	maxQueue int
}

// NewGate returns a gate admitting maxInflight concurrent holders with a
// waiting room of maxQueue. Both are clamped to at least 1 and 0.
func NewGate(maxInflight, maxQueue int) *Gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
	}
}

// tryQueue reserves a waiting-room place; it reports false when the room is
// full.
func (g *Gate) tryQueue() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.queued >= g.maxQueue {
		return false
	}
	g.queued++
	return true
}

// unqueue gives back a waiting-room place.
func (g *Gate) unqueue() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.queued--
}

// Enter claims an execution slot. The fast path takes a free slot without
// queueing. Otherwise the caller waits in the bounded queue until a slot
// frees or ctx is done; a full queue rejects immediately. On ok=true the
// caller must call the returned release exactly once. err is non-nil only
// for a context abort while queued.
func (g *Gate) Enter(ctx context.Context) (release func(), ok bool, err error) {
	select {
	case g.slots <- struct{}{}:
		return g.release, true, nil
	default:
	}
	if !g.tryQueue() {
		return nil, false, nil
	}
	defer g.unqueue()
	select {
	case g.slots <- struct{}{}:
		return g.release, true, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

func (g *Gate) release() { <-g.slots }

// Inflight reports the number of currently executing holders.
func (g *Gate) Inflight() int { return len(g.slots) }

// Queued reports the number of requests waiting for a slot.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}
