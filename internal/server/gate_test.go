package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateBoundsInflight(t *testing.T) {
	g := NewGate(2, 0)
	r1, ok, _ := g.Enter(context.Background())
	r2, ok2, _ := g.Enter(context.Background())
	if !ok || !ok2 {
		t.Fatal("two slots must admit two holders")
	}
	if g.Inflight() != 2 {
		t.Fatalf("inflight: %d, want 2", g.Inflight())
	}
	// Third with no queue: immediate rejection, not a wait.
	if _, ok, err := g.Enter(context.Background()); ok || err != nil {
		t.Fatalf("over-capacity enter: ok=%v err=%v, want rejection", ok, err)
	}
	r1()
	if r3, ok, _ := g.Enter(context.Background()); !ok {
		t.Fatal("slot freed by release must admit")
	} else {
		r3()
	}
	r2()
	if g.Inflight() != 0 {
		t.Fatalf("inflight after releases: %d", g.Inflight())
	}
}

func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := NewGate(1, 1)
	r1, ok, _ := g.Enter(context.Background())
	if !ok {
		t.Fatal("first enter")
	}
	entered := make(chan func(), 1)
	go func() {
		r, ok, err := g.Enter(context.Background())
		if !ok || err != nil {
			t.Errorf("queued enter: ok=%v err=%v", ok, err)
		}
		entered <- r
	}()
	// Wait until the goroutine is queued, then free the slot.
	waitFor(t, func() bool { return g.Queued() == 1 })
	r1()
	select {
	case r := <-entered:
		r()
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never got the freed slot")
	}
}

func TestGateQueueFullRejects(t *testing.T) {
	g := NewGate(1, 1)
	r1, _, _ := g.Enter(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if r, ok, err := g.Enter(context.Background()); ok && err == nil {
			r()
		} else {
			t.Errorf("queued enter: ok=%v err=%v", ok, err)
		}
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	// Queue is full: the next request must be rejected immediately.
	start := time.Now()
	_, ok, err := g.Enter(context.Background())
	if ok || err != nil {
		t.Fatalf("enter with full queue: ok=%v err=%v", ok, err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("full-queue rejection blocked instead of failing fast")
	}
	r1() // free the slot so the queued waiter completes
	<-done
}

func TestGateQueuedContextAbort(t *testing.T) {
	g := NewGate(1, 4)
	r1, _, _ := g.Enter(context.Background())
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, ok, err := g.Enter(ctx)
		if ok {
			t.Error("cancelled waiter admitted")
		}
		errc <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued abort: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck in queue")
	}
	waitFor(t, func() bool { return g.Queued() == 0 })
}

// TestGateNoGoroutineGrowth floods an empty-queue gate from many goroutines
// and checks rejections keep the queue at zero — the bounded-queue
// invariant that prevents unbounded goroutine pileup.
func TestGateNoGoroutineGrowth(t *testing.T) {
	g := NewGate(2, 2)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, ok, _ := g.Enter(context.Background()); ok {
				time.Sleep(time.Millisecond)
				r()
			}
		}()
	}
	wg.Wait()
	if q := g.Queued(); q != 0 {
		t.Fatalf("queued after flood drained: %d", q)
	}
	if f := g.Inflight(); f != 0 {
		t.Fatalf("inflight after flood drained: %d", f)
	}
}

// waitFor polls cond with a deadline, failing the test on timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
