package server

import (
	"net"
	"sync"
)

// LimitListener bounds accepted connections: Accept blocks once n
// connections are open and resumes as they close. Together with the
// per-class gates this caps the server's total goroutine count — HTTP
// serving goroutines are bounded by the connection limit, query goroutines
// by the gates. (The standard library's equivalent lives in golang.org/x/net;
// this repo is stdlib-only, so the few lines are written out.)
func LimitListener(l net.Listener, n int) net.Listener {
	return &limitListener{Listener: l, sem: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

// limitConn gives the semaphore token back when the connection closes.
// Close is idempotent per net.Conn convention, so the release is once-only.
type limitConn struct {
	net.Conn
	release func()
	once    sync.Once
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
