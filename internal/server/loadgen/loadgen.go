// Package loadgen is the closed-loop measurement half of the overload
// story: an open-loop arrival process (Poisson or Gamma interarrivals, so
// offered load does not slow down when the server does — the classic
// coordinated-omission trap) driving the query API with per-request retry
// and jittered exponential backoff. It reports goodput, shed rate and
// latency quantiles, which BENCH_serve.json records at several multiples
// of configured capacity.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"gdbm/internal/report"
	"gdbm/internal/server/wire"
)

// Config drives one load run.
type Config struct {
	// Target is the server base URL (http://host:port).
	Target string
	// Engine and Class route and classify the queries.
	Engine string
	Class  string
	// Stmt produces the i-th statement; nil uses a default gsql read.
	Stmt func(i int) string
	// Rate is the offered arrival rate in requests/second.
	Rate float64
	// Duration bounds the arrival window; requests in flight at the end
	// are awaited.
	Duration time.Duration
	// Arrival selects the interarrival distribution: "poisson" (default)
	// or "gamma".
	Arrival string
	// CV is the coefficient of variation for gamma arrivals; 1 reduces to
	// Poisson, >1 is burstier. Ignored for poisson.
	CV float64
	// Seed makes the arrival process and jitter deterministic.
	Seed int64
	// MaxRetries bounds retry attempts after the first try.
	MaxRetries int
	// RetryBase is the backoff base; attempt n sleeps
	// max(server Retry-After, RetryBase·2ⁿ·jitter) with jitter in
	// [0.5, 1.5).
	RetryBase time.Duration
	// TimeoutMS is the per-request deadline sent to the server.
	TimeoutMS int
	// Proto selects the response encoding: "json" (default) or "binary"
	// for the length-prefixed frame protocol (Accept: application/x-gdbw).
	Proto string
	// Client is the HTTP client; nil uses a dedicated one.
	Client *http.Client
}

// binary reports whether the run asks for framed binary responses.
func (c Config) binary() bool { return c.Proto == "binary" }

// Result summarizes one run.
type Result struct {
	OfferedRPS   float64 `json:"offered_rps"`
	Offered      int     `json:"offered"`
	Completed    int     `json:"completed"`
	GaveUp       int     `json:"gave_up"`
	Failed       int     `json:"failed"`
	ShedAttempts int     `json:"shed_attempts"`
	Retries      int     `json:"retries"`
	DurationSec  float64 `json:"duration_sec"`
	GoodputRPS   float64 `json:"goodput_rps"`
	ShedRate     float64 `json:"shed_rate"` // shed attempts / total attempts
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	// TTFB quantiles measure request start to first response-body byte of
	// the final successful attempt — what streaming buys a slow consumer.
	TTFBP50MS float64 `json:"ttfb_p50_ms"`
	TTFBP99MS float64 `json:"ttfb_p99_ms"`
	// BytesPerQuery is mean response-body bytes per completed request —
	// the framing-efficiency axis of the JSON vs binary comparison.
	BytesPerQuery float64 `json:"bytes_per_query"`
}

// SweepPoint is one capacity multiple of the serve benchmark.
type SweepPoint struct {
	Multiplier float64 `json:"multiplier"`
	Result
}

// Sweep is the BENCH_serve.json payload.
type Sweep struct {
	report.Stamp
	Engine      string       `json:"engine"`
	Class       string       `json:"class"`
	Arrival     string       `json:"arrival"`
	Proto       string       `json:"proto"`
	CapacityRPS float64      `json:"capacity_rps"`
	Note        string       `json:"note"`
	Points      []SweepPoint `json:"points"`
}

// interarrival returns a generator of interarrival gaps with mean 1/rate.
func interarrival(arrival string, rate, cv float64, rng *rand.Rand) (func() time.Duration, error) {
	switch arrival {
	case "", "poisson":
		return func() time.Duration {
			return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		}, nil
	case "gamma":
		if cv <= 0 {
			cv = 1
		}
		shape := 1 / (cv * cv)
		scale := 1 / (rate * shape) // mean = shape·scale = 1/rate
		return func() time.Duration {
			return time.Duration(gamma(rng, shape) * scale * float64(time.Second))
		}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown arrival process %q", arrival)
}

// gamma samples Gamma(shape, 1) by Marsaglia–Tsang squeeze, boosting
// shape < 1 through Gamma(shape+1)·U^(1/shape).
func gamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// attemptOutcome classifies one HTTP attempt.
type attemptOutcome struct {
	shed       bool
	retryAfter time.Duration
	ok         bool
	err        error
	ttfb       time.Duration // request start → first body byte (ok only)
	bytes      int64         // response body size (ok only)
}

// Run executes one load run against cfg.Target and blocks until every
// request resolved (success, gave-up, or hard failure).
func Run(cfg Config) (*Result, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Rate and Duration must be positive")
	}
	switch cfg.Proto {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("loadgen: unknown proto %q", cfg.Proto)
	}
	stmt := cfg.Stmt
	if stmt == nil {
		stmt = func(int) string { return "SELECT ORDER" }
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gap, err := interarrival(cfg.Arrival, cfg.Rate, cfg.CV, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{OfferedRPS: cfg.Rate}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		ttfbs     []time.Duration
		bodyBytes int64
		wg        sync.WaitGroup
	)
	record := func(d, ttfb time.Duration, bytes int64, outcome string, sheds, retries int) {
		mu.Lock()
		defer mu.Unlock()
		res.ShedAttempts += sheds
		res.Retries += retries
		switch outcome {
		case "ok":
			res.Completed++
			latencies = append(latencies, d)
			ttfbs = append(ttfbs, ttfb)
			bodyBytes += bytes
		case "gaveup":
			res.GaveUp++
		default:
			res.Failed++
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// Open loop: arrivals fire on schedule regardless of outstanding work.
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		i := res.Offered
		res.Offered++
		wg.Add(1)
		seed := rng.Int63()
		go func(i int, seed int64) {
			defer wg.Done()
			runOne(cfg, client, stmt(i), seed, record)
		}(i, seed)
		time.Sleep(gap())
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.DurationSec = elapsed.Seconds()
	res.GoodputRPS = float64(res.Completed) / elapsed.Seconds()
	attempts := res.Offered + res.Retries
	if attempts > 0 {
		res.ShedRate = float64(res.ShedAttempts) / float64(attempts)
	}
	res.P50MS = quantileMS(latencies, 0.50)
	res.P99MS = quantileMS(latencies, 0.99)
	res.TTFBP50MS = quantileMS(ttfbs, 0.50)
	res.TTFBP99MS = quantileMS(ttfbs, 0.99)
	if res.Completed > 0 {
		res.BytesPerQuery = float64(bodyBytes) / float64(res.Completed)
	}
	return res, nil
}

// runOne drives one logical request to resolution: try, honor Retry-After
// with jittered exponential backoff on shed, give up after MaxRetries.
// Latency is arrival→success, so queueing in retries is charged to the
// request (no coordinated omission at the request level either).
func runOne(cfg Config, client *http.Client, stmt string, seed int64, record func(time.Duration, time.Duration, int64, string, int, int)) {
	rng := rand.New(rand.NewSource(seed))
	base := cfg.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	arrived := time.Now()
	sheds, retries := 0, 0
	for attempt := 0; ; attempt++ {
		out := tryQuery(cfg, client, stmt)
		if out.ok {
			record(time.Since(arrived), out.ttfb, out.bytes, "ok", sheds, retries)
			return
		}
		if !out.shed {
			record(0, 0, 0, "failed", sheds, retries)
			return
		}
		sheds++
		if attempt >= cfg.MaxRetries {
			record(0, 0, 0, "gaveup", sheds, retries)
			return
		}
		retries++
		backoff := time.Duration(float64(base) * math.Pow(2, float64(attempt)) * (0.5 + rng.Float64()))
		if out.retryAfter > backoff {
			backoff = out.retryAfter
		}
		time.Sleep(backoff)
	}
}

// meteredReader counts body bytes and stamps the time of the first one.
type meteredReader struct {
	r     io.Reader
	start time.Time
	n     int64
	ttfb  time.Duration
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	if n > 0 && m.ttfb == 0 {
		m.ttfb = time.Since(m.start)
	}
	m.n += int64(n)
	return n, err
}

// tryQuery performs one HTTP attempt. Every path reads the response body to
// EOF before closing it: an undrained body makes net/http discard the
// connection, so a loadgen that skips draining measures connection setup,
// not the server (and burns its ephemeral ports doing so).
func tryQuery(cfg Config, client *http.Client, stmt string) attemptOutcome {
	body, _ := json.Marshal(map[string]any{
		"stmt":       stmt,
		"engine":     cfg.Engine,
		"class":      cfg.Class,
		"timeout_ms": cfg.TimeoutMS,
	})
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		cfg.Target+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return attemptOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.binary() {
		req.Header.Set("Accept", wire.ContentType)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// Transport errors (conn refused during drain, accept-queue
		// pushback) are retryable sheds from the client's standpoint.
		return attemptOutcome{shed: true, retryAfter: 0, err: err}
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		br := &meteredReader{r: resp.Body, start: start}
		if cfg.binary() {
			// Collect verifies the terminal End/Error frame: a truncated
			// stream is an attempt failure, never a short success.
			if _, err := wire.Collect(br); err != nil {
				return attemptOutcome{err: err}
			}
		} else if _, err := io.Copy(io.Discard, br); err != nil {
			// The streamed JSON path signals mid-stream failure by
			// aborting the connection; surface that as a failed attempt.
			return attemptOutcome{err: err}
		}
		return attemptOutcome{ok: true, ttfb: br.ttfb, bytes: br.n}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var e struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return attemptOutcome{shed: true, retryAfter: time.Duration(e.RetryAfterMS) * time.Millisecond}
	default:
		return attemptOutcome{err: fmt.Errorf("status %d", resp.StatusCode)}
	}
}

// quantileMS returns the q-quantile of latencies in milliseconds (0 when
// empty), by sorting a copy.
func quantileMS(latencies []time.Duration, q float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx]) / float64(time.Millisecond)
}

// RunSweep measures the serve benchmark: one Run per capacity multiplier.
func RunSweep(cfg Config, capacity float64, multipliers []float64) (*Sweep, error) {
	sw := &Sweep{
		Stamp:       report.NewStamp(),
		Engine:      cfg.Engine,
		Class:       cfg.Class,
		Arrival:     cfg.Arrival,
		Proto:       cfg.Proto,
		CapacityRPS: capacity,
		Note: "open-loop arrivals; goodput counts completed requests only; " +
			"shed_rate is shed attempts over all attempts including retries; " +
			"latency is arrival to final success including retry backoff",
	}
	if sw.Arrival == "" {
		sw.Arrival = "poisson"
	}
	if sw.Proto == "" {
		sw.Proto = "json"
	}
	for _, m := range multipliers {
		c := cfg
		c.Rate = capacity * m
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Multiplier: m, Result: *r})
	}
	return sw, nil
}
