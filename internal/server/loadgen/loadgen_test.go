package loadgen

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestInterarrivalMean checks both arrival processes produce gaps whose
// mean matches 1/rate — the open-loop property everything downstream
// (offered load, shed rate) depends on.
func TestInterarrivalMean(t *testing.T) {
	const rate = 200.0
	for _, tc := range []struct {
		arrival string
		cv      float64
	}{
		{"poisson", 0},
		{"gamma", 0.5},
		{"gamma", 1},
		{"gamma", 2},
	} {
		rng := rand.New(rand.NewSource(7))
		gap, err := interarrival(tc.arrival, rate, tc.cv, rng)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		const n = 20000
		var sum time.Duration
		for i := 0; i < n; i++ {
			g := gap()
			if g < 0 {
				t.Fatalf("%v: negative gap %v", tc, g)
			}
			sum += g
		}
		mean := sum.Seconds() / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("%s cv=%g: mean gap %.6fs, want %.6fs ±5%%", tc.arrival, tc.cv, mean, want)
		}
	}
}

// TestGammaVariance checks the gamma process actually delivers the
// requested burstiness: CV of the gaps tracks the configured CV.
func TestGammaVariance(t *testing.T) {
	for _, cv := range []float64{0.5, 1, 2} {
		rng := rand.New(rand.NewSource(11))
		gap, err := interarrival("gamma", 100, cv, rng)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50000
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = gap().Seconds()
			sum += xs[i]
		}
		mean := sum / n
		var varsum float64
		for _, x := range xs {
			varsum += (x - mean) * (x - mean)
		}
		got := math.Sqrt(varsum/n) / mean
		if math.Abs(got-cv)/cv > 0.1 {
			t.Errorf("cv=%g: measured CV %.3f, want within 10%%", cv, got)
		}
	}
}

func TestInterarrivalRejectsUnknown(t *testing.T) {
	if _, err := interarrival("uniform", 1, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown arrival process must be rejected")
	}
}

func TestQuantileMS(t *testing.T) {
	if q := quantileMS(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile: %g", q)
	}
	// 1..100ms: p50 and p99 must land on the order statistics regardless
	// of input order.
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(100-i) * time.Millisecond
	}
	if q := quantileMS(lat, 0.50); math.Abs(q-50) > 1.5 {
		t.Errorf("p50 = %g, want ~50", q)
	}
	if q := quantileMS(lat, 0.99); math.Abs(q-99) > 1.5 {
		t.Errorf("p99 = %g, want ~99", q)
	}
	// The input slice must not be reordered (callers keep using it).
	if lat[0] != 100*time.Millisecond {
		t.Error("quantileMS sorted the caller's slice")
	}
}

// TestRunAgainstStub drives the full closed loop against a stub server
// that sheds every third request once and hard-fails a marked statement,
// checking the client-side accounting: sheds retried to success, hard
// failures not retried, offered = completed + gaveup + failed.
func TestRunAgainstStub(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var q struct {
			Stmt string `json:"stmt"`
		}
		_ = json.NewDecoder(r.Body).Decode(&q)
		if q.Stmt == "FAIL" {
			http.Error(w, `{"error":"bad"}`, http.StatusUnprocessableEntity)
			return
		}
		mu.Lock()
		n := hits
		hits++
		mu.Unlock()
		if n%3 == 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"retry_after_ms":5}`))
			return
		}
		_, _ = w.Write([]byte(`{"cols":["n"]}`))
	}))
	defer ts.Close()

	res, err := Run(Config{
		Target:     ts.URL,
		Engine:     "stub",
		Stmt:       func(i int) string { return "OK" },
		Rate:       200,
		Duration:   300 * time.Millisecond,
		Arrival:    "poisson",
		Seed:       3,
		MaxRetries: 4,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Completed == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.ShedAttempts == 0 || res.Retries == 0 {
		t.Fatalf("the stub sheds every third hit; client saw none: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("no statement should hard-fail here: %+v", res)
	}
	if got := res.Completed + res.GaveUp + res.Failed; got != res.Offered {
		t.Fatalf("accounting: completed+gaveup+failed = %d, offered = %d", got, res.Offered)
	}
	if res.GoodputRPS <= 0 || res.P50MS <= 0 {
		t.Fatalf("goodput/latency not measured: %+v", res)
	}

	// A non-shed error resolves as failed, with no retries burned.
	res, err = Run(Config{
		Target:   ts.URL,
		Stmt:     func(int) string { return "FAIL" },
		Rate:     100,
		Duration: 100 * time.Millisecond,
		Arrival:  "poisson",
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != res.Offered || res.Completed != 0 {
		t.Fatalf("hard failures must not complete or retry: %+v", res)
	}
}

// TestRunSweepShape checks RunSweep stamps the host and scales the
// offered rate per multiplier.
func TestRunSweepShape(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	sw, err := RunSweep(Config{
		Target:   ts.URL,
		Engine:   "stub",
		Stmt:     func(int) string { return "OK" },
		Duration: 100 * time.Millisecond,
		Seed:     5,
	}, 100, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sw.GoVersion == "" || sw.GoMaxProcs == 0 {
		t.Fatalf("sweep is not host-stamped: %+v", sw.Stamp)
	}
	if sw.Arrival != "poisson" {
		t.Fatalf("default arrival: %q", sw.Arrival)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points: %d", len(sw.Points))
	}
	if sw.Points[0].OfferedRPS != 50 || sw.Points[1].OfferedRPS != 100 {
		t.Fatalf("multipliers not applied: %+v %+v", sw.Points[0].OfferedRPS, sw.Points[1].OfferedRPS)
	}
	if sw.Points[0].Multiplier != 0.5 || sw.Points[1].Multiplier != 1 {
		t.Fatalf("multiplier labels: %+v", sw.Points)
	}
}

// TestRunValidation rejects nonsensical configs.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("zero rate must be rejected")
	}
	if _, err := Run(Config{Rate: 1, Duration: 0}); err == nil {
		t.Error("zero duration must be rejected")
	}
	if _, err := Run(Config{Rate: 1, Duration: time.Second, Arrival: "bogus"}); err == nil {
		t.Error("unknown arrival must be rejected")
	}
}

// TestBodyDrainReusesConnections is the regression test for the unread-
// response-body leak: tryQuery must drain every response body (success,
// shed, and error alike) so the transport can reuse connections. A flaky
// server cycles all three response shapes; driven sequentially over one
// client, the whole run must fit on a single TCP connection. Before the
// fix, every undrained body killed its connection and this test counts one
// dial per request.
func TestBodyDrainReusesConnections(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		switch r.Header.Get("X-Case") {
		case "shed":
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"overloaded","retry_after_ms":5}` + "\n"))
		case "fail":
			w.WriteHeader(http.StatusUnprocessableEntity)
			_, _ = w.Write([]byte(`{"error":"bad statement"}` + "\n"))
		default:
			// A body big enough that an undrained read buffer cannot hide
			// the leak behind the transport's peek-ahead.
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"cols":["n"],"rows":[`))
			for i := 0; i < 4096; i++ {
				if i > 0 {
					_, _ = w.Write([]byte{','})
				}
				_, _ = w.Write([]byte(`[123456789]`))
			}
			_, _ = w.Write([]byte(`],"elapsed_ms":1}` + "\n"))
		}
	}))
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	cases := []string{"ok", "shed", "fail"}
	const rounds = 30
	for i := 0; i < rounds; i++ {
		kase := cases[i%len(cases)]
		cfg := Config{Target: ts.URL, Engine: "stub"}
		// Route the case marker through a header the stub reads; tryQuery
		// itself stays untouched.
		withHeader := *client
		withHeader.Transport = roundTripperFunc(func(r *http.Request) (*http.Response, error) {
			r.Header.Set("X-Case", kase)
			return http.DefaultTransport.RoundTrip(r)
		})
		out := tryQuery(cfg, &withHeader, "SELECT ORDER")
		switch kase {
		case "ok":
			if !out.ok {
				t.Fatalf("round %d: ok case failed: %+v", i, out)
			}
			if out.bytes == 0 {
				t.Fatalf("round %d: body bytes not measured", i)
			}
		case "shed":
			if !out.shed || out.retryAfter != 5*time.Millisecond {
				t.Fatalf("round %d: shed case: %+v", i, out)
			}
		case "fail":
			if out.ok || out.shed || out.err == nil {
				t.Fatalf("round %d: fail case: %+v", i, out)
			}
		}
	}
	// Sequential requests over one transport: a handful of connections at
	// most (keep-alive races can open a second), never one per request.
	if got := conns.Load(); got > 3 {
		t.Fatalf("server saw %d connections for %d sequential requests; bodies are not being drained", got, rounds)
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
