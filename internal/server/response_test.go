package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gdbm/internal/obs"
)

// brokenWriter is a ResponseWriter whose body writes always fail, as when
// the client hung up mid-response.
type brokenWriter struct {
	h      http.Header
	status int
}

func (b *brokenWriter) Header() http.Header       { return b.h }
func (b *brokenWriter) WriteHeader(code int)      { b.status = code }
func (b *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// TestWriteJSONAbortsOnEncodeFailure: a failed body write must not be
// swallowed — it counts in server.write_errors and panics with
// http.ErrAbortHandler so net/http tears the connection down instead of
// leaving a truncated 200 on a reusable connection.
func TestWriteJSONAbortsOnEncodeFailure(t *testing.T) {
	m := obs.NewRegistry()
	s := &Server{metrics: m}
	w := &brokenWriter{h: http.Header{}}
	defer func() {
		r := recover()
		if r != http.ErrAbortHandler {
			t.Fatalf("recover: %v, want http.ErrAbortHandler", r)
		}
		if got := m.Counters()["server.write_errors"]; got != 1 {
			t.Errorf("write_errors counter: %d, want 1", got)
		}
	}()
	s.writeJSON(w, http.StatusOK, map[string]string{"k": "v"})
	t.Fatal("writeJSON returned despite a failed write")
}

// TestWriteShedRoundsUp: sub-millisecond (and sub-second) retry hints must
// round up, never truncate — a retry_after_ms of 0 tells a well-behaved
// client to hammer the server at exactly the moment it is shedding load.
func TestWriteShedRoundsUp(t *testing.T) {
	s := &Server{metrics: obs.NewRegistry()}
	cases := []struct {
		retry    time.Duration
		wantMS   int64
		wantSecs string
	}{
		{300 * time.Microsecond, 1, "1"},
		{time.Millisecond, 1, "1"},
		{1500 * time.Microsecond, 2, "1"},
		{250 * time.Millisecond, 250, "1"},
		{1200 * time.Millisecond, 1200, "2"},
		{0, 1, "1"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		s.writeShed(w, http.StatusTooManyRequests, "overloaded", c.retry)
		if got := w.Header().Get("Retry-After"); got != c.wantSecs {
			t.Errorf("retry %v: Retry-After header %q, want %q", c.retry, got, c.wantSecs)
		}
		var body errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("retry %v: body: %v", c.retry, err)
		}
		if body.RetryAfterMS != c.wantMS {
			t.Errorf("retry %v: retry_after_ms %d, want %d", c.retry, body.RetryAfterMS, c.wantMS)
		}
	}
}

// TestBucketNearEmptyRetryIsSubSecond pins the hazard the rounding fix
// guards: a fast bucket's retry hint at near-empty fill is a real but
// sub-millisecond wait, which truncating conversions turn into 0.
func TestBucketNearEmptyRetryIsSubSecond(t *testing.T) {
	c := newClock()
	b := NewBucket(10000, 1) // refills a token every 100µs
	if ok, _ := b.Take(c.Now()); !ok {
		t.Fatal("first take")
	}
	ok, retry := b.Take(c.Now())
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry >= time.Millisecond {
		t.Fatalf("near-empty retry %v, want sub-millisecond and positive", retry)
	}
	// End to end through writeShed, that hint must still say "wait", not
	// "retry now".
	s := &Server{metrics: obs.NewRegistry()}
	w := httptest.NewRecorder()
	s.writeShed(w, http.StatusTooManyRequests, "overloaded", retry)
	var body errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterMS < 1 {
		t.Fatalf("retry_after_ms %d for %v wait: clients will hammer", body.RetryAfterMS, retry)
	}
}
