package server

import (
	"context"
	"sync"
)

// sched is a deficit-weighted fair queue in front of a shared pool of
// execution slots. It replaces the phase-1 design of one independent
// bounded gate per SLO class: there, batch overload and interactive
// overload shed independently, so a saturated batch class could hold its
// full inflight allocation while interactive queued — and vice versa. Here
// every class draws from one slot pool, and whenever requests are waiting,
// freed slots are handed out by stride scheduling over the class weights:
// each class carries a virtual-time pass that advances by 1/weight per
// dispatch, and the next slot always goes to the backlogged class with the
// smallest pass.
//
// Fairness invariant: over any interval in which a class stays backlogged,
// it receives at least floor(weight/Σweights · dispatches) - 1 of the slots
// dispatched, regardless of how much load the other classes offer. A class
// that goes idle forfeits only the share it did not ask for — its pass is
// clamped up to the global virtual time when it returns, so it cannot bank
// idle credit and then monopolize the pool.
//
// Like the gate it replaces, sched never parks more than MaxQueue waiters
// per class: beyond that, Enter rejects immediately, so goroutine count
// stays bounded by inflight + Σ queue bounds under any offered load.
type sched struct {
	mu      sync.Mutex
	free    int     // slots not executing and not handed to a waiter
	slots   int     // total pool size
	vtime   float64 // virtual time: pass of the most recent dispatch
	classes map[Class]*schedClass
	order   []Class // deterministic tie-break and iteration order
}

// schedClass is one SLO class's queue state.
type schedClass struct {
	class      Class
	weight     float64
	maxQueue   int
	pass       float64 // stride virtual time; +1/weight per dispatch
	queue      []*schedWaiter
	inflight   int
	dispatched uint64 // queue dispatches, for tests and statsz
}

// schedWaiter parks one queued request. The dispatch side sends the
// release function; capacity 1 so a grant never blocks the scheduler.
type schedWaiter struct {
	ch chan func()
}

// classSched sizes one class inside newSched.
type classSched struct {
	Weight   float64
	MaxQueue int
}

// newSched builds a scheduler over `slots` shared execution slots. Weights
// are clamped to at least 1; order fixes the tie-break sequence.
func newSched(slots int, order []Class, cfgs map[Class]classSched) *sched {
	if slots < 1 {
		slots = 1
	}
	s := &sched{
		free:    slots,
		slots:   slots,
		classes: map[Class]*schedClass{},
		order:   append([]Class(nil), order...),
	}
	for _, c := range order {
		cfg := cfgs[c]
		w := cfg.Weight
		if w < 1 {
			w = 1
		}
		q := cfg.MaxQueue
		if q < 0 {
			q = 0
		}
		s.classes[c] = &schedClass{class: c, weight: w, maxQueue: q}
	}
	return s
}

// pendingLocked reports whether any class has queued waiters.
func (s *sched) pendingLocked() bool {
	for _, c := range s.order {
		if len(s.classes[c].queue) > 0 {
			return true
		}
	}
	return false
}

// dispatchLocked hands one slot to the backlogged class with the smallest
// pass, advancing that class's pass by its stride. The caller has already
// accounted the slot (it does not come from free).
func (s *sched) dispatchLocked() {
	var best *schedClass
	for _, c := range s.order {
		cl := s.classes[c]
		if len(cl.queue) == 0 {
			continue
		}
		if best == nil || cl.pass < best.pass {
			best = cl
		}
	}
	w := best.queue[0]
	best.queue = best.queue[1:]
	s.vtime = best.pass
	best.pass += 1 / best.weight
	best.inflight++
	best.dispatched++
	w.ch <- s.releaseFunc(best)
}

// releaseFunc returns the exactly-once release for a granted slot: it
// passes the slot straight to the next waiter when one exists, otherwise
// back to the free pool.
func (s *sched) releaseFunc(cl *schedClass) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			cl.inflight--
			if s.pendingLocked() {
				s.dispatchLocked()
			} else {
				s.free++
			}
			s.mu.Unlock()
		})
	}
}

// Enter claims an execution slot for class. The fast path takes a free
// slot when nobody is queued anywhere. Otherwise the caller waits in its
// class's bounded queue until the weighted dispatch reaches it or ctx is
// done; a full class queue rejects immediately (ok=false). On ok=true the
// caller must call release exactly once. err is non-nil only for a context
// abort while queued.
func (s *sched) Enter(ctx context.Context, class Class) (release func(), ok bool, err error) {
	s.mu.Lock()
	cl := s.classes[class]
	if cl == nil {
		s.mu.Unlock()
		return nil, false, nil
	}
	if s.free > 0 && !s.pendingLocked() {
		s.free--
		cl.inflight++
		s.mu.Unlock()
		return s.releaseFunc(cl), true, nil
	}
	if len(cl.queue) >= cl.maxQueue {
		s.mu.Unlock()
		return nil, false, nil
	}
	w := &schedWaiter{ch: make(chan func(), 1)}
	if len(cl.queue) == 0 && cl.pass < s.vtime {
		cl.pass = s.vtime // returning class: no banked idle credit
	}
	cl.queue = append(cl.queue, w)
	// A release may have raced this arrival and parked a slot in free while
	// the queue looked empty; never let a slot idle while waiters exist.
	for s.free > 0 && s.pendingLocked() {
		s.free--
		s.dispatchLocked()
	}
	s.mu.Unlock()

	select {
	case rel := <-w.ch:
		return rel, true, nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := removeWaiter(cl, w)
		s.mu.Unlock()
		if !removed {
			// The dispatch won the race; take the grant and give it back.
			rel := <-w.ch
			rel()
		}
		return nil, false, ctx.Err()
	}
}

// removeWaiter unlinks w from cl's queue; false means w was already
// granted a slot.
func removeWaiter(cl *schedClass, w *schedWaiter) bool {
	for i, q := range cl.queue {
		if q == w {
			cl.queue = append(cl.queue[:i], cl.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Inflight reports currently executing holders across all classes.
func (s *sched) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots - s.free
}

// ClassInflight reports currently executing holders of one class.
func (s *sched) ClassInflight(class Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl := s.classes[class]; cl != nil {
		return cl.inflight
	}
	return 0
}

// Queued reports the number of class's requests waiting for a slot.
func (s *sched) Queued(class Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl := s.classes[class]; cl != nil {
		return len(cl.queue)
	}
	return 0
}

// Dispatched reports how many queued requests of class have been granted
// slots (fast-path admissions not included).
func (s *sched) Dispatched(class Class) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl := s.classes[class]; cl != nil {
		return cl.dispatched
	}
	return 0
}
