package server

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testSched(slots int, interWeight, batchWeight float64, maxQueue int) *sched {
	return newSched(slots, []Class{Interactive, Batch}, map[Class]classSched{
		Interactive: {Weight: interWeight, MaxQueue: maxQueue},
		Batch:       {Weight: batchWeight, MaxQueue: maxQueue},
	})
}

// TestSchedFastPath: an uncontended Enter takes a slot without queueing and
// release returns it.
func TestSchedFastPath(t *testing.T) {
	s := testSched(2, 4, 1, 8)
	rel1, ok, err := s.Enter(context.Background(), Interactive)
	if !ok || err != nil {
		t.Fatalf("enter: ok=%v err=%v", ok, err)
	}
	rel2, ok, _ := s.Enter(context.Background(), Batch)
	if !ok {
		t.Fatal("second enter")
	}
	if got := s.Inflight(); got != 2 {
		t.Fatalf("inflight: %d", got)
	}
	rel1()
	rel2()
	rel2() // release is exactly-once; a double call must not corrupt the pool
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight after release: %d", got)
	}
	if got := s.Queued(Interactive) + s.Queued(Batch); got != 0 {
		t.Fatalf("queued: %d", got)
	}
}

// TestSchedQueueFullRejects: beyond MaxQueue the scheduler sheds immediately
// rather than growing a waiter backlog.
func TestSchedQueueFullRejects(t *testing.T) {
	s := testSched(1, 1, 1, 0)
	rel, ok, _ := s.Enter(context.Background(), Interactive)
	if !ok {
		t.Fatal("first enter")
	}
	if _, ok, err := s.Enter(context.Background(), Interactive); ok || err != nil {
		t.Fatalf("full queue: ok=%v err=%v, want instant reject", ok, err)
	}
	rel()
}

// TestSchedFloodStaysBounded: offering far more load than slots + queue
// must shed the excess instantly — never park more than MaxQueue waiters
// per class — and drain completely with no leaked slots.
func TestSchedFloodStaysBounded(t *testing.T) {
	const maxQueue = 8
	s := testSched(2, 3, 1, maxQueue)
	var granted, shedded atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := Interactive
			if i%2 == 0 {
				class = Batch
			}
			if q := s.Queued(class); q > maxQueue {
				t.Errorf("queue depth %d exceeds bound %d", q, maxQueue)
			}
			rel, ok, err := s.Enter(context.Background(), class)
			if err != nil {
				t.Errorf("enter: %v", err)
				return
			}
			if !ok {
				shedded.Add(1)
				return
			}
			granted.Add(1)
			runtime.Gosched()
			rel()
		}(i)
	}
	wg.Wait()
	if granted.Load() == 0 || shedded.Load() == 0 {
		t.Fatalf("granted=%d shedded=%d, want both under a 500-request flood",
			granted.Load(), shedded.Load())
	}
	if got := s.Inflight(); got != 0 {
		t.Fatalf("leaked slots: inflight %d after drain", got)
	}
	if got := s.Queued(Interactive) + s.Queued(Batch); got != 0 {
		t.Fatalf("stranded waiters: %d", got)
	}
}

// TestSchedWeightedInterleaving drives dispatches one at a time and pins the
// exact stride order: weights 3:1 over one slot must hand interactive 3 of
// every 4 contested slots.
func TestSchedWeightedInterleaving(t *testing.T) {
	s := testSched(1, 3, 1, 64)
	seed, ok, _ := s.Enter(context.Background(), Interactive)
	if !ok {
		t.Fatal("seed")
	}

	type grant struct {
		class Class
		rel   func()
	}
	grants := make(chan grant, 64)
	var wg sync.WaitGroup
	enqueue := func(c Class, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, ok, err := s.Enter(context.Background(), c)
				if !ok || err != nil {
					t.Errorf("enter %s: ok=%v err=%v", c, ok, err)
					return
				}
				grants <- grant{c, rel}
			}()
		}
	}
	enqueue(Interactive, 9)
	enqueue(Batch, 3)
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued(Interactive) != 9 || s.Queued(Batch) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("parked %d/%d", s.Queued(Interactive), s.Queued(Batch))
		}
		time.Sleep(time.Millisecond)
	}

	seed()
	var order []Class
	for i := 0; i < 12; i++ {
		select {
		case g := <-grants:
			order = append(order, g.class)
			g.rel()
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived; order so far %v", i, order)
		}
	}
	wg.Wait()

	// Stride with weights 3:1: passes run I:1/3,2/3,1,... B:1,2,3 — each
	// 4-dispatch window contains exactly 3 interactive and 1 batch while
	// both are backlogged.
	for w := 0; w+4 <= 12; w += 4 {
		inter := 0
		for _, c := range order[w : w+4] {
			if c == Interactive {
				inter++
			}
		}
		if inter != 3 {
			t.Fatalf("window %d: %d interactive of 4 (order %v)", w/4, inter, order)
		}
	}
}

// TestSchedCancelWhileQueued: a context abort while queued unlinks the
// waiter (or hands back a racing grant) without leaking the slot.
func TestSchedCancelWhileQueued(t *testing.T) {
	s := testSched(1, 1, 1, 8)
	rel, ok, _ := s.Enter(context.Background(), Interactive)
	if !ok {
		t.Fatal("seed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, ok, err := s.Enter(ctx, Interactive)
		if ok {
			err = context.Canceled // treat a grant as failure for this test
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued(Interactive) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued cancel: %v", err)
	}
	rel()
	// The slot must be reusable after the cancelled waiter is gone.
	rel2, ok, err := s.Enter(context.Background(), Batch)
	if !ok || err != nil {
		t.Fatalf("enter after cancel: ok=%v err=%v", ok, err)
	}
	rel2()
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight: %d", got)
	}
}

// TestSchedCancelRace: hammer the cancel-vs-dispatch race; the granted-slot
// handback path must never lose a slot.
func TestSchedCancelRace(t *testing.T) {
	s := testSched(1, 2, 1, 4)
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
			defer cancel()
			class := Interactive
			if i%2 == 0 {
				class = Batch
			}
			rel, ok, _ := s.Enter(ctx, class)
			if ok {
				granted.Add(1)
				runtime.Gosched()
				rel()
			}
		}(i)
	}
	wg.Wait()
	if granted.Load() == 0 {
		t.Fatal("no grants at all")
	}
	if got := s.Inflight(); got != 0 {
		t.Fatalf("leaked slots: inflight %d after all releases", got)
	}
	rel, ok, err := s.Enter(context.Background(), Interactive)
	if !ok || err != nil {
		t.Fatalf("pool unusable after race: ok=%v err=%v", ok, err)
	}
	rel()
}

// TestSchedIdleClassCannotBankCredit: a class that sat idle while the other
// drained contested dispatches must not burst past its weight share when it
// returns — its pass is clamped up to the global virtual time, so idle time
// is forfeited, not banked.
func TestSchedIdleClassCannotBankCredit(t *testing.T) {
	s := testSched(1, 1, 1, 64)

	// parkAndDrain enqueues n waiters of each listed class, waits until all
	// are parked behind the held seed slot, releases the seed, and returns
	// the grant order.
	parkAndDrain := func(seedClass Class, want map[Class]int) []Class {
		t.Helper()
		seed, ok, _ := s.Enter(context.Background(), seedClass)
		if !ok {
			t.Fatal("seed enter")
		}
		total := 0
		grants := make(chan Class, 256)
		var wg sync.WaitGroup
		for c, n := range want {
			total += n
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(c Class) {
					defer wg.Done()
					rel, ok, err := s.Enter(context.Background(), c)
					if !ok || err != nil {
						t.Errorf("enter %s: ok=%v err=%v", c, ok, err)
						return
					}
					grants <- c
					rel()
				}(c)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			parked := 0
			for c := range want {
				parked += s.Queued(c)
			}
			if parked == total {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("parked %d of %d", parked, total)
			}
			time.Sleep(time.Millisecond)
		}
		seed()
		var order []Class
		for i := 0; i < total; i++ {
			select {
			case c := <-grants:
				order = append(order, c)
			case <-time.After(5 * time.Second):
				t.Fatalf("grant %d missing; order %v", i, order)
			}
		}
		wg.Wait()
		return order
	}

	// Phase 1: batch drains 50 contested dispatches alone — its pass and
	// the global virtual time advance far while interactive sits at 0.
	parkAndDrain(Batch, map[Class]int{Batch: 50})

	// Phase 2: both contend under equal weights. Without the clamp,
	// interactive's stale pass of 0 would win every dispatch until it
	// caught up — four interactive grants in a row. With it, no prefix may
	// favor either class by more than the one-dispatch stride slack.
	order := parkAndDrain(Batch, map[Class]int{Interactive: 4, Batch: 4})
	imbalance := 0
	for _, c := range order {
		if c == Interactive {
			imbalance++
		} else {
			imbalance--
		}
		if imbalance < -2 || imbalance > 2 {
			t.Fatalf("banked credit: prefix imbalance %d in order %v", imbalance, order)
		}
	}
}
