package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
)

// Config sizes a Server.
type Config struct {
	// Engines names the engines served at startup (one shared instance
	// each). Empty serves every registered in-memory engine.
	Engines []string
	// Open constructs an engine instance; nil uses engine.Open with
	// default options. Tests inject stub engines here.
	Open func(name string) (engine.Engine, error)
	// Seed, when non-nil, loads a synthetic graph into every engine that
	// can ingest one.
	Seed *gen.Spec
	// Interactive and Batch size the two admission classes. Zero-valued
	// fields take defaults (DefaultInteractive / DefaultBatch).
	Interactive ClassConfig
	Batch       ClassConfig
	// SessionTTL and MaxSessions bound the per-client session table.
	SessionTTL  time.Duration
	MaxSessions int
	// Metrics receives server.* counters; nil disables metrics.
	Metrics *obs.Registry
	// ChunkRows bounds rows per streamed response chunk; zero uses
	// defaultChunkRows.
	ChunkRows int
	// Now is the clock; nil uses time.Now. Tests drive a fake clock.
	Now func() time.Time
}

// DefaultInteractive and DefaultBatch are the class defaults: interactive
// gets a high admission rate, small queue and a tight deadline; batch gets
// a lower rate, deeper queue and a loose deadline.
var (
	DefaultInteractive = ClassConfig{
		Rate: 200, Burst: 50, MaxInflight: 16, MaxQueue: 32,
		Weight: 4, Deadline: 2 * time.Second,
	}
	DefaultBatch = ClassConfig{
		Rate: 20, Burst: 10, MaxInflight: 4, MaxQueue: 64,
		Weight: 1, Deadline: 30 * time.Second,
	}
)

// Server is the overload-safe query service: admission control per SLO
// class in front of the engines, deadlines threaded into the kernels, and
// an explicit drain protocol. Construct with New, serve with Handler, and
// stop by BeginDrain followed by http.Server.Shutdown.
type Server struct {
	classes  map[Class]*admission
	tenants  map[string]*tenant
	order    []string
	sessions  *sessionStore
	metrics   *obs.Registry
	chunkRows int
	now       func() time.Time
	draining  atomic.Bool
	mux       *http.ServeMux

	// openFn and seedSpec replay engine construction for new sessions.
	openFn   func(string) (engine.Engine, error)
	seedSpec *gen.Spec
}

// New opens the configured engines and assembles the service.
func New(cfg Config) (*Server, error) {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	open := cfg.Open
	if open == nil {
		open = func(name string) (engine.Engine, error) {
			if capability.NeedsDir(name) {
				return nil, fmt.Errorf("engine %q needs a data directory; the server hosts in-memory engines only", name)
			}
			return engine.Open(name, engine.Options{Metrics: cfg.Metrics})
		}
	}
	names := cfg.Engines
	if len(names) == 0 {
		for _, n := range engine.Names() {
			if !capability.NeedsDir(n) {
				names = append(names, n)
			}
		}
	}
	if cfg.Interactive == (ClassConfig{}) {
		cfg.Interactive = DefaultInteractive
	}
	if cfg.Batch == (ClassConfig{}) {
		cfg.Batch = DefaultBatch
	}
	// One slot pool across both classes, sized by their summed MaxInflight
	// and divided by weight while contested.
	sc := newSched(cfg.Interactive.MaxInflight+cfg.Batch.MaxInflight,
		[]Class{Interactive, Batch},
		map[Class]classSched{
			Interactive: {Weight: cfg.Interactive.Weight, MaxQueue: cfg.Interactive.MaxQueue},
			Batch:       {Weight: cfg.Batch.Weight, MaxQueue: cfg.Batch.MaxQueue},
		})
	s := &Server{
		classes: map[Class]*admission{
			Interactive: newAdmission(Interactive, cfg.Interactive, sc, cfg.Metrics, now),
			Batch:       newAdmission(Batch, cfg.Batch, sc, cfg.Metrics, now),
		},
		tenants:   map[string]*tenant{},
		sessions:  newSessionStore(cfg.SessionTTL, cfg.MaxSessions, now),
		metrics:   cfg.Metrics,
		chunkRows: cfg.ChunkRows,
		now:       now,
	}
	if s.chunkRows <= 0 {
		s.chunkRows = defaultChunkRows
	}
	for _, name := range names {
		eng, err := open(name)
		if err != nil {
			return nil, fmt.Errorf("open engine %q: %w", name, err)
		}
		if cfg.Seed != nil {
			if err := seed(eng, *cfg.Seed); err != nil {
				return nil, fmt.Errorf("seed engine %q: %w", name, err)
			}
		}
		t := &tenant{name: name, eng: eng}
		s.tenants[name] = t
		s.order = append(s.order, name)
	}
	if len(s.tenants) == 0 {
		return nil, fmt.Errorf("server: no engines to serve")
	}
	s.openFn = open
	s.seedSpec = cfg.Seed
	s.buildMux()
	return s, nil
}

// seed loads the spec into eng when the engine can ingest it, flushing
// engines that buffer.
func seed(eng engine.Engine, spec gen.Spec) error {
	l, ok := eng.(engine.Loader)
	if !ok {
		return nil
	}
	if _, err := gen.Generate(spec, l); err != nil {
		return err
	}
	if p, ok := eng.(engine.Persistent); ok {
		return p.Flush()
	}
	return nil
}

// BeginDrain flips the server into drain mode: every new request answers
// 503 + Retry-After while in-flight requests run to completion. The caller
// then uses http.Server.Shutdown, which waits for in-flight handlers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Engines lists the shared engines being served, in configuration order.
func (s *Server) Engines() []string { return append([]string(nil), s.order...) }

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
}

// queryRequest is the wire form of one query.
type queryRequest struct {
	// Stmt is the statement, in the engine's own query language.
	Stmt string `json:"stmt"`
	// Engine names a shared engine; Session routes to a private session
	// engine instead. Exactly one must be set.
	Engine  string `json:"engine,omitempty"`
	Session string `json:"session,omitempty"`
	// Class is "interactive" (default) or "batch".
	Class string `json:"class,omitempty"`
	// TimeoutMS lowers the class deadline for this request; it can never
	// raise it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// queryResponse is the wire form of a query result.
type queryResponse struct {
	Cols      []string `json:"cols"`
	Rows      [][]any  `json:"rows"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

// errorResponse is the wire form of every failure, including sheds.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeJSON writes a one-shot JSON response. An encode failure means the
// client saw a truncated body under an already-committed status; leaving
// the connection open would hand the next pipelined request a corrupt
// stream, so the failure is counted, logged and the connection aborted.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.abortResponse("response encode failed", err)
	}
}

// abortResponse handles a failure after response bytes are committed:
// count, log, and panic with http.ErrAbortHandler so net/http closes the
// connection without logging a stack trace. Truncation must look like an
// aborted connection to the client, never like a complete short response.
func (s *Server) abortResponse(reason string, err error) {
	s.metrics.Counter("server.write_errors").Inc()
	log.Printf("server: %s, aborting connection: %v", reason, err)
	panic(http.ErrAbortHandler)
}

// writeShed answers a shed or drain with the HTTP code, a Retry-After
// header (whole seconds, rounded up, at least 1) and a machine-readable
// retry_after_ms body, also rounded up and never 0 — a truncated-to-zero
// hint reads as "retry immediately" and turns backoff into a hammer.
func (s *Server) writeShed(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	ms := int64((retryAfter + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, code, errorResponse{Error: msg, RetryAfterMS: ms})
}

// drainRetryAfter is the Retry-After hint while draining: long enough for a
// load balancer to move on, short enough that a restarted server is found.
const drainRetryAfter = 2 * time.Second

// maxRequestBody caps request bodies. Statements are short; without a cap a
// single huge JSON body buffers unboundedly in the decoder, undoing the
// overload contract's memory bound.
const maxRequestBody = 1 << 20

// decodeBody decodes r's JSON body into v under the size cap, answering 413
// on an oversized body and 400 on malformed JSON. It reports whether the
// handler should proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeShed(w, http.StatusServiceUnavailable, "server is draining", drainRetryAfter)
		return
	}
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Stmt == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "stmt is required"})
		return
	}
	if (req.Engine == "") == (req.Session == "") {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "exactly one of engine or session is required"})
		return
	}
	class, ok := ParseClass(req.Class)
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown class %q", req.Class)})
		return
	}

	// Resolve the tenant before admission so 404s do not consume tokens.
	var t *tenant
	if req.Engine != "" {
		t = s.tenants[req.Engine]
		if t == nil {
			s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown engine %q", req.Engine)})
			return
		}
	} else {
		sess, err := s.sessions.Get(req.Session)
		if err != nil {
			s.writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		t = &sess.tenant
	}

	adm := s.classes[class]
	done, shed, err := adm.Admit(r.Context())
	if err != nil {
		// Client went away while queued; nothing useful to write.
		s.writeJSON(w, http.StatusRequestTimeout, errorResponse{Error: err.Error()})
		return
	}
	if shed != nil {
		s.writeShed(w, http.StatusTooManyRequests,
			"overloaded ("+shed.Reason+"), retry later", shed.RetryAfter)
		return
	}

	// Deadline: the class cap, lowered (never raised) by the request.
	deadline := adm.cfg.Deadline
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; deadline == 0 || d < deadline {
			deadline = d
		}
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// Rows stream to the client as the plan produces them, framed per the
	// negotiated encoding. Failures before the first byte still answer
	// plain HTTP error statuses; failures after commit are in-band (binary
	// Error frame) or abort the connection (JSON has no in-band channel).
	st := s.newRespStream(w, r)
	start := time.Now()
	execErr := t.exec(readonlyStmt(t.eng, req.Stmt), func(eng engine.Engine) error {
		q, ok := eng.(engine.Querier)
		if !ok {
			return fmt.Errorf("engine %q has no query language", t.name)
		}
		return engine.QueryStream(ctx, q, req.Stmt, st)
	})
	elapsed := time.Since(start)

	if execErr == nil {
		done("ok")
		if err := st.finish(elapsed); err != nil {
			s.abortResponse("response write failed", err)
		}
		return
	}
	status, outcome, msg := classifyExecErr(execErr)
	done(outcome)
	if !st.committed() {
		s.writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	s.metrics.Counter("server.stream.aborts").Inc()
	if err := st.abort(status, msg); err != nil {
		s.abortResponse("mid-stream failure", execErr)
	}
}

// classifyExecErr maps a query execution error to its HTTP status, its
// admission outcome label and the client-facing message.
func classifyExecErr(err error) (status int, outcome, msg string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout", "query deadline exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "failed", "request cancelled"
	default:
		return http.StatusUnprocessableEntity, "failed", err.Error()
	}
}

func toWire(res *plan.Result, elapsed time.Duration) queryResponse {
	out := queryResponse{
		Cols:      res.Cols,
		Rows:      make([][]any, len(res.Rows)),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if out.Cols == nil {
		out.Cols = []string{}
	}
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = v.Native()
		}
		out.Rows[i] = vals
	}
	return out
}

type sessionCreateRequest struct {
	Engine string `json:"engine"`
}

type sessionCreateResponse struct {
	Session string `json:"session"`
	Engine  string `json:"engine"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeShed(w, http.StatusServiceUnavailable, "server is draining", drainRetryAfter)
		return
	}
	var req sessionCreateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if _, ok := s.tenants[req.Engine]; !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown engine %q", req.Engine)})
		return
	}
	eng, err := s.openFn(req.Engine)
	if err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if s.seedSpec != nil {
		if err := seed(eng, *s.seedSpec); err != nil {
			_ = eng.Close()
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
	}
	id, err := s.sessions.Create(req.Engine, eng)
	if err != nil {
		_ = eng.Close()
		if errors.Is(err, errSessionsFull) {
			s.writeShed(w, http.StatusTooManyRequests, err.Error(), time.Second)
			return
		}
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, sessionCreateResponse{Session: id, Engine: req.Engine})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Delete(r.PathValue("id")) {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("session %q: %v", r.PathValue("id"), model.ErrNotFound)})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]any{
		"status":   status,
		"engines":  s.Engines(),
		"sessions": s.sessions.Len(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"counters": s.metrics.Counters(),
		"draining": s.draining.Load(),
	})
}
