package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
	"gdbm/internal/server"
	"gdbm/internal/server/loadgen"
)

// stubEngine is a controllable ContextQuerier: an optional fixed service
// time and an optional external block, both interruptible by ctx. It lets
// the tests pin service behavior precisely (real engines are exercised by
// the smoke test and cmd/gdbload).
type stubEngine struct {
	delay time.Duration
	block chan struct{} // non-nil: QueryContext waits for close(block)
}

func (e *stubEngine) Name() string                  { return "stub" }
func (e *stubEngine) SurveyRow() string             { return "stub" }
func (e *stubEngine) Features() engine.Features     { return engine.Features{} }
func (e *stubEngine) Essentials() engine.Essentials { return engine.Essentials{} }
func (e *stubEngine) Close() error                  { return nil }
func (e *stubEngine) LanguageName() string          { return "gsql" }

func (e *stubEngine) Query(stmt string) (*plan.Result, error) {
	return e.QueryContext(context.Background(), stmt)
}

func (e *stubEngine) QueryContext(ctx context.Context, stmt string) (*plan.Result, error) {
	if e.block != nil {
		select {
		case <-e.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if e.delay > 0 {
		select {
		case <-time.After(e.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &plan.Result{Cols: []string{"echo"}, Rows: nil}, nil
}

// newTestServer builds a Server around the stub with tight, test-friendly
// class configs, returning the server, its metrics and an httptest host.
func newTestServer(t *testing.T, stub *stubEngine, inter, batch server.ClassConfig) (*server.Server, *obs.Registry, *httptest.Server) {
	t.Helper()
	m := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Engines:     []string{"stub"},
		Open:        func(string) (engine.Engine, error) { return stub, nil },
		Interactive: inter,
		Batch:       batch,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, m, ts
}

func postQuery(t *testing.T, url string, body map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

var relaxed = server.ClassConfig{Rate: 1000, Burst: 1000, MaxInflight: 16, MaxQueue: 16, Deadline: 5 * time.Second}

func TestQueryOK(t *testing.T) {
	_, _, ts := newTestServer(t, &stubEngine{}, relaxed, relaxed)
	resp, out := postQuery(t, ts.URL, map[string]any{"stmt": "SELECT ORDER", "engine": "stub"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%v)", resp.StatusCode, out)
	}
	if cols, ok := out["cols"].([]any); !ok || len(cols) != 1 || cols[0] != "echo" {
		t.Fatalf("cols: %v", out["cols"])
	}
}

func TestQueryValidation(t *testing.T) {
	_, _, ts := newTestServer(t, &stubEngine{}, relaxed, relaxed)
	cases := []struct {
		body map[string]any
		code int
	}{
		{map[string]any{"engine": "stub"}, http.StatusBadRequest},                                // no stmt
		{map[string]any{"stmt": "x"}, http.StatusBadRequest},                                     // no target
		{map[string]any{"stmt": "x", "engine": "stub", "session": "s"}, http.StatusBadRequest},   // both targets
		{map[string]any{"stmt": "x", "engine": "nosuch"}, http.StatusNotFound},                   // unknown engine
		{map[string]any{"stmt": "x", "engine": "stub", "class": "turbo"}, http.StatusBadRequest}, // unknown class
		{map[string]any{"stmt": "x", "session": "deadbeef"}, http.StatusNotFound},                // unknown session
	}
	for i, c := range cases {
		resp, _ := postQuery(t, ts.URL, c.body)
		if resp.StatusCode != c.code {
			t.Errorf("case %d: status %d, want %d", i, resp.StatusCode, c.code)
		}
	}
}

// TestDeadline504: a query slower than its deadline answers 504 in deadline
// time, not service time — proof the context reaches the engine.
func TestDeadline504(t *testing.T) {
	_, m, ts := newTestServer(t, &stubEngine{delay: 10 * time.Second}, relaxed, relaxed)
	start := time.Now()
	resp, _ := postQuery(t, ts.URL, map[string]any{
		"stmt": "SELECT ORDER", "engine": "stub", "timeout_ms": 100,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("took %v; deadline did not interrupt the query", elapsed)
	}
	if got := m.Counters()["server.interactive.timeout"]; got != 1 {
		t.Errorf("timeout counter: %d, want 1", got)
	}
}

// TestShed429RetryAfter exhausts a one-token bucket and checks the shed
// contract: 429, a Retry-After header, and a machine-readable body.
func TestShed429RetryAfter(t *testing.T) {
	tight := server.ClassConfig{Rate: 0.5, Burst: 1, MaxInflight: 4, MaxQueue: 4, Deadline: time.Second}
	_, m, ts := newTestServer(t, &stubEngine{}, tight, relaxed)
	if resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	resp, out := postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header: %q", ra)
	}
	if ms, ok := out["retry_after_ms"].(float64); !ok || ms <= 0 {
		t.Fatalf("retry_after_ms body: %v", out["retry_after_ms"])
	}
	if got := m.Counters()["server.interactive.shed_rate"]; got != 1 {
		t.Errorf("shed_rate counter: %d, want 1", got)
	}
}

// TestDrainCompletesInflight is the drain contract: after BeginDrain new
// work is rejected 503 + Retry-After, every already-admitted query still
// completes successfully (zero failures), and http.Server.Shutdown returns.
func TestDrainCompletesInflight(t *testing.T) {
	stub := &stubEngine{block: make(chan struct{})}
	srv, m, ts := newTestServer(t, stub, relaxed, relaxed)

	const inflight = 4
	var wg sync.WaitGroup
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"})
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until all four are admitted and blocked inside the engine.
	waitFor(t, func() bool {
		return m.Counters()["server.interactive.admitted"] == inflight
	})

	srv.BeginDrain()
	resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 must carry Retry-After")
	}

	close(stub.block)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("in-flight query %d finished %d, want 200", i, code)
		}
	}
	counters := m.Counters()
	if got := counters["server.interactive.failed"]; got != 0 {
		t.Errorf("failed counter after drain: %d, want 0", got)
	}
	if got := counters["server.interactive.completed"]; got != inflight {
		t.Errorf("completed counter after drain: %d, want %d", got, inflight)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBodyTooLarge413: a body over the server's cap answers 413 instead of
// buffering without bound, on both decoding endpoints.
func TestBodyTooLarge413(t *testing.T) {
	_, _, ts := newTestServer(t, &stubEngine{}, relaxed, relaxed)
	big, _ := json.Marshal(map[string]any{
		"stmt":   string(bytes.Repeat([]byte{'x'}, 2<<20)),
		"engine": "stub",
	})
	for _, path := range []string{"/v1/query", "/v1/session"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with 2MiB body: status %d, want 413", path, resp.StatusCode)
		}
	}
	// A normal-sized request still works afterwards.
	if resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after oversized one: %d", resp.StatusCode)
	}
}

// closeCounter wraps stubEngine to count Close calls.
type closeCounter struct {
	stubEngine
	closed atomic.Int64
}

func (e *closeCounter) Close() error { e.closed.Add(1); return nil }

// TestSessionDeleteClosesEngine: deleting a session over HTTP closes the
// private engine that was opened for it.
func TestSessionDeleteClosesEngine(t *testing.T) {
	var opened []*closeCounter
	var mu sync.Mutex
	m := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Engines: []string{"stub"},
		Open: func(string) (engine.Engine, error) {
			e := &closeCounter{}
			mu.Lock()
			opened = append(opened, e)
			mu.Unlock()
			return e, nil
		},
		Interactive: relaxed,
		Batch:       relaxed,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	b, _ := json.Marshal(map[string]string{"engine": "stub"})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Session string `json:"session"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if created.Session == "" {
		t.Fatal("no session id")
	}
	// opened[0] is the shared tenant, opened[1] the session engine.
	if len(opened) != 2 {
		t.Fatalf("opened %d engines, want 2", len(opened))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+created.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if got := opened[1].closed.Load(); got != 1 {
		t.Errorf("session engine closed %d times, want 1", got)
	}
	if got := opened[0].closed.Load(); got != 0 {
		t.Errorf("shared engine closed %d times, want 0", got)
	}
}

// TestSessionLifecycle: create, query through, delete, then 404.
func TestSessionLifecycle(t *testing.T) {
	_, _, ts := newTestServer(t, &stubEngine{}, relaxed, relaxed)
	b, _ := json.Marshal(map[string]string{"engine": "stub"})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Session == "" {
		t.Fatal("no session id")
	}

	if resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "session": created.Session}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query via session: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+created.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete session: %d", dresp.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, map[string]any{"stmt": "x", "session": created.Session}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete: %d, want 404", resp.StatusCode)
	}
}

// TestOverloadGoodput is the overload acceptance criterion run in-process:
// at 2× capacity the server sheds explicitly, goodput stays within 20% of
// the 1× goodput, admitted-latency p99 stays bounded by the class deadline,
// and the goroutine count returns to baseline (no leak per shed request).
func TestOverloadGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const capacity = 100.0 // requests/second; well below the stub's service capacity at 1ms
	inter := server.ClassConfig{
		Rate: capacity, Burst: 10, MaxInflight: 8, MaxQueue: 8,
		Deadline: time.Second,
	}
	_, m, ts := newTestServer(t, &stubEngine{delay: time.Millisecond}, inter, relaxed)

	baseline := runtime.NumGoroutine()
	run := func(mult float64) *loadgen.Result {
		r, err := loadgen.Run(loadgen.Config{
			Target:     ts.URL,
			Engine:     "stub",
			Class:      "interactive",
			Rate:       capacity * mult,
			Duration:   1500 * time.Millisecond,
			Seed:       42,
			MaxRetries: 3,
			RetryBase:  20 * time.Millisecond,
			TimeoutMS:  900,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	at1 := run(1)
	at2 := run(2)

	if at2.ShedAttempts == 0 {
		t.Error("2× load produced no sheds; admission control is not engaging")
	}
	if at1.GoodputRPS > 0 && at2.GoodputRPS < 0.8*at1.GoodputRPS {
		t.Errorf("goodput collapsed under overload: 1×=%.1f rps, 2×=%.1f rps",
			at1.GoodputRPS, at2.GoodputRPS)
	}
	// p99 of completed requests (including retry backoff) must stay within
	// a few deadlines — overload latency is bounded, not unbounded queueing.
	if at2.P99MS > 5000 {
		t.Errorf("2× p99 %v ms; latencies unbounded under overload", at2.P99MS)
	}
	// Shed requests must not leak goroutines.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+10 })

	counters := m.Counters()
	sheds := counters["server.interactive.shed_rate"] + counters["server.interactive.shed_queue"]
	if sheds == 0 {
		t.Error("server-side shed counters are zero under 2× load")
	}
	t.Logf("1×: goodput=%.1f rps p99=%.1fms shed=%.3f; 2×: goodput=%.1f rps p99=%.1fms shed=%.3f",
		at1.GoodputRPS, at1.P99MS, at1.ShedRate, at2.GoodputRPS, at2.P99MS, at2.ShedRate)
}

// TestStatszAndHealthz exercise the observability endpoints.
func TestStatszAndHealthz(t *testing.T) {
	srv, _, ts := newTestServer(t, &stubEngine{}, relaxed, relaxed)
	postQuery(t, ts.URL, map[string]any{"stmt": "x", "engine": "stub"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Counters map[string]uint64 `json:"counters"`
		Draining bool              `json:"draining"`
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Counters["server.interactive.completed"] != 1 {
		t.Fatalf("statsz counters: %v", stats.Counters)
	}

	srv.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if fmt.Sprint(srv.Engines()) != "[stub]" {
		t.Fatalf("engines: %v", srv.Engines())
	}
}
