package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/query/gql"
)

// tenant is one engine instance plus the read/write lock serializing access
// to it. Shared (per-engine-name) tenants live for the server's lifetime;
// session tenants belong to one client and expire.
type tenant struct {
	name string
	eng  engine.Engine
	mu   sync.RWMutex
}

// exec runs fn holding the tenant lock: shared for read-only statements so
// concurrent readers proceed in parallel, exclusive for writes.
func (t *tenant) exec(readonly bool, fn func(engine.Engine) error) error {
	if readonly {
		t.mu.RLock()
		defer t.mu.RUnlock()
		return fn(t.eng)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fn(t.eng)
}

// readonlyStmt classifies stmt against the tenant engine's language so exec
// can take the shared lock for pure reads. Writes, unknown languages and
// unparseable statements all answer false — the exclusive lock is the safe
// default. gql needs the parser: its writes begin with MATCH
// (MATCH ... CREATE/SET/DELETE), so first-keyword matching would route a
// mutation under the shared lock. gsql and sparqlish dispatch statements on
// their first keyword, so a SELECT/ASK head there guarantees a pure read.
func readonlyStmt(eng engine.Engine, stmt string) bool {
	q, ok := eng.(engine.Querier)
	if !ok {
		return false
	}
	switch q.LanguageName() {
	case "gql":
		st, err := gql.Parse(stmt)
		return err == nil && st.ReadOnly()
	case "gsql":
		return engine.ReadOnlyStmt(stmt, "SELECT")
	case "sparqlish":
		return engine.ReadOnlyStmt(stmt, "SELECT", "ASK")
	}
	return false
}

// session is a private tenant with an expiry.
type session struct {
	tenant
	lastUsed time.Time
}

// sessionStore owns per-client sessions: bounded in count, expired lazily
// by TTL on every access, with no background goroutine (the server's
// goroutine count stays a function of in-flight requests alone).
type sessionStore struct {
	mu       sync.Mutex
	sessions map[string]*session
	ttl      time.Duration
	max      int
	now      func() time.Time
}

func newSessionStore(ttl time.Duration, max int, now func() time.Time) *sessionStore {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	if max <= 0 {
		max = 64
	}
	return &sessionStore{
		sessions: map[string]*session{},
		ttl:      ttl,
		max:      max,
		now:      now,
	}
}

// newID returns a 16-byte random hex token.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Create opens a session around eng. It sweeps expired sessions first and
// rejects when the store is full even after the sweep. On rejection the
// caller still owns eng and must close it.
func (s *sessionStore) Create(name string, eng engine.Engine) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	swept := s.sweepLocked()
	var createErr error
	if len(s.sessions) >= s.max {
		createErr = fmt.Errorf("session table full (%d): %w", s.max, errSessionsFull)
	} else {
		sess := &session{lastUsed: s.now()}
		sess.name = name
		sess.eng = eng
		s.sessions[id] = sess
	}
	s.mu.Unlock()
	closeSessions(swept)
	if createErr != nil {
		return "", createErr
	}
	return id, nil
}

var errSessionsFull = fmt.Errorf("too many sessions")

// Get looks up a live session and refreshes its expiry.
func (s *sessionStore) Get(id string) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	var expired *session
	if ok && s.now().Sub(sess.lastUsed) > s.ttl {
		delete(s.sessions, id)
		expired, ok = sess, false
	}
	if ok {
		sess.lastUsed = s.now()
	}
	s.mu.Unlock()
	if expired != nil {
		closeSessions([]*session{expired})
	}
	if !ok {
		return nil, fmt.Errorf("session %q: %w", id, model.ErrNotFound)
	}
	return sess, nil
}

// Delete removes a session and closes its engine; it reports whether the id
// was live.
func (s *sessionStore) Delete(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		closeSessions([]*session{sess})
	}
	return ok
}

// Len reports the number of live sessions (expired ones may linger until
// the next sweep).
func (s *sessionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// sweepLocked removes expired sessions and returns them; the caller must
// pass them to closeSessions after releasing the store lock.
func (s *sessionStore) sweepLocked() []*session {
	cutoff := s.now().Add(-s.ttl)
	var removed []*session
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) {
			delete(s.sessions, id)
			removed = append(removed, sess)
		}
	}
	return removed
}

// closeSessions closes the engines of sessions already removed from the
// store. It runs outside the store lock and takes each session's exclusive
// tenant lock first, so an in-flight query that resolved the session before
// removal finishes before its engine goes away.
func closeSessions(removed []*session) {
	for _, sess := range removed {
		sess.mu.Lock()
		_ = sess.eng.Close()
		sess.mu.Unlock()
	}
}
