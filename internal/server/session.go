package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

// tenant is one engine instance plus the read/write lock serializing access
// to it. Shared (per-engine-name) tenants live for the server's lifetime;
// session tenants belong to one client and expire.
type tenant struct {
	name string
	eng  engine.Engine
	mu   sync.RWMutex
}

// exec runs fn holding the tenant lock: shared for read-only statements so
// concurrent readers proceed in parallel, exclusive for writes.
func (t *tenant) exec(readonly bool, fn func(engine.Engine) error) error {
	if readonly {
		t.mu.RLock()
		defer t.mu.RUnlock()
		return fn(t.eng)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fn(t.eng)
}

// readVerbs maps a query language to the statement keywords that leave the
// graph unchanged (compare engine.ReadOnlyStmt). Unknown languages return
// nil, so every statement takes the exclusive lock — safe by default.
func readVerbs(lang string) []string {
	switch lang {
	case "gql":
		return []string{"MATCH", "RETURN"}
	case "gsql":
		return []string{"SELECT"}
	case "sparqlish":
		return []string{"SELECT", "ASK"}
	}
	return nil
}

// readonlyStmt classifies stmt against the tenant engine's language.
func readonlyStmt(eng engine.Engine, stmt string) bool {
	q, ok := eng.(engine.Querier)
	if !ok {
		return false
	}
	verbs := readVerbs(q.LanguageName())
	if verbs == nil {
		return false
	}
	return engine.ReadOnlyStmt(stmt, verbs...)
}

// session is a private tenant with an expiry.
type session struct {
	tenant
	lastUsed time.Time
}

// sessionStore owns per-client sessions: bounded in count, expired lazily
// by TTL on every access, with no background goroutine (the server's
// goroutine count stays a function of in-flight requests alone).
type sessionStore struct {
	mu       sync.Mutex
	sessions map[string]*session
	ttl      time.Duration
	max      int
	now      func() time.Time
}

func newSessionStore(ttl time.Duration, max int, now func() time.Time) *sessionStore {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	if max <= 0 {
		max = 64
	}
	return &sessionStore{
		sessions: map[string]*session{},
		ttl:      ttl,
		max:      max,
		now:      now,
	}
}

// newID returns a 16-byte random hex token.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Create opens a session around eng. It sweeps expired sessions first and
// rejects when the store is full even after the sweep.
func (s *sessionStore) Create(name string, eng engine.Engine) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	if len(s.sessions) >= s.max {
		return "", fmt.Errorf("session table full (%d): %w", s.max, errSessionsFull)
	}
	sess := &session{lastUsed: s.now()}
	sess.name = name
	sess.eng = eng
	s.sessions[id] = sess
	return id, nil
}

var errSessionsFull = fmt.Errorf("too many sessions")

// Get looks up a live session and refreshes its expiry.
func (s *sessionStore) Get(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if ok && s.now().Sub(sess.lastUsed) > s.ttl {
		delete(s.sessions, id)
		ok = false
	}
	if !ok {
		return nil, fmt.Errorf("session %q: %w", id, model.ErrNotFound)
	}
	sess.lastUsed = s.now()
	return sess, nil
}

// Delete removes a session; it reports whether the id was live.
func (s *sessionStore) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	return ok
}

// Len reports the number of live sessions (expired ones may linger until
// the next sweep).
func (s *sessionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *sessionStore) sweepLocked() {
	cutoff := s.now().Add(-s.ttl)
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) {
			delete(s.sessions, id)
		}
	}
}
