package server

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// langEngine is a minimal Querier whose only job is to report a language;
// closes are counted so the store's lifecycle can be asserted.
type langEngine struct {
	lang   string
	closed atomic.Int64
}

func (e *langEngine) Name() string                  { return "lang-" + e.lang }
func (e *langEngine) SurveyRow() string             { return "test" }
func (e *langEngine) Features() engine.Features     { return engine.Features{} }
func (e *langEngine) Essentials() engine.Essentials { return engine.Essentials{} }
func (e *langEngine) Close() error                  { e.closed.Add(1); return nil }
func (e *langEngine) LanguageName() string          { return e.lang }
func (e *langEngine) Query(string) (*plan.Result, error) {
	return &plan.Result{}, nil
}

// bareEngine has no query language at all.
type bareEngine struct{}

func (bareEngine) Name() string                  { return "bare" }
func (bareEngine) SurveyRow() string             { return "test" }
func (bareEngine) Features() engine.Features     { return engine.Features{} }
func (bareEngine) Essentials() engine.Essentials { return engine.Essentials{} }
func (bareEngine) Close() error                  { return nil }

// TestReadonlyStmt pins the lock-classification contract. The gql cases are
// the regression for the shared-lock race: every MATCH-headed write must be
// classified as a write (exclusive lock), not by its first keyword.
func TestReadonlyStmt(t *testing.T) {
	cases := []struct {
		lang string
		stmt string
		want bool
	}{
		// gql reads
		{"gql", "MATCH (a:Person) RETURN a.name", true},
		{"gql", "MATCH (a)-[:knows]->(b) WHERE b.age > 30 RETURN b", true},
		// gql writes that begin with MATCH — the race the review caught
		{"gql", "MATCH (a) DELETE a", false},
		{"gql", "MATCH (a) DETACH DELETE a", false},
		{"gql", "MATCH (a:Person) SET a.age = 31", false},
		{"gql", "MATCH (a), (b) CREATE (a)-[:knows]->(b)", false},
		// gql writes with write heads
		{"gql", "CREATE (n:Person {name: 'ada'})", false},
		// unparseable gql falls back to the exclusive lock
		{"gql", "MATCH oops(", false},
		{"gql", "", false},
		// gsql / sparqlish dispatch on the first keyword
		{"gsql", "SELECT name FROM VERTEX Person", true},
		{"gsql", "INSERT VERTEX Person (name) VALUES ('ada')", false},
		{"sparqlish", "SELECT ?x WHERE { ?x <knows> ?y }", true},
		{"sparqlish", "ASK { ?x <knows> ?y }", true},
		{"sparqlish", "LOAD <data>", false},
		// unknown language: always exclusive
		{"mystery", "SELECT 1", false},
	}
	for _, c := range cases {
		got := readonlyStmt(&langEngine{lang: c.lang}, c.stmt)
		if got != c.want {
			t.Errorf("readonlyStmt(%s, %q) = %v, want %v", c.lang, c.stmt, got, c.want)
		}
	}
	if readonlyStmt(bareEngine{}, "SELECT 1") {
		t.Error("engine without a query language must take the exclusive lock")
	}
}

// TestSessionStoreClosesEngines asserts every removal path — explicit
// Delete, lazy expiry on Get, and the sweep on Create — closes the
// session's engine exactly once.
func TestSessionStoreClosesEngines(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	store := newSessionStore(time.Minute, 4, clock)

	// Delete closes.
	e1 := &langEngine{lang: "gsql"}
	id1, err := store.Create("e1", e1)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Delete(id1) {
		t.Fatal("delete reported not-live")
	}
	if got := e1.closed.Load(); got != 1 {
		t.Errorf("engine closed %d times after Delete, want 1", got)
	}

	// Get on an expired session closes.
	e2 := &langEngine{lang: "gsql"}
	id2, err := store.Create("e2", e2)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := store.Get(id2); !errors.Is(err, model.ErrNotFound) {
		t.Fatalf("expired Get: %v, want ErrNotFound", err)
	}
	if got := e2.closed.Load(); got != 1 {
		t.Errorf("engine closed %d times after expiry Get, want 1", got)
	}

	// The sweep inside Create closes expired sessions it removes.
	e3 := &langEngine{lang: "gsql"}
	if _, err := store.Create("e3", e3); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	e4 := &langEngine{lang: "gsql"}
	if _, err := store.Create("e4", e4); err != nil {
		t.Fatal(err)
	}
	if got := e3.closed.Load(); got != 1 {
		t.Errorf("engine closed %d times after sweep, want 1", got)
	}
	if got := e4.closed.Load(); got != 0 {
		t.Errorf("live engine closed %d times, want 0", got)
	}

	// A second Delete of a gone id neither reports live nor double-closes.
	if store.Delete(id2) {
		t.Error("second delete reported live")
	}
	if got := e2.closed.Load(); got != 1 {
		t.Errorf("engine closed %d times after double delete, want 1", got)
	}
}
