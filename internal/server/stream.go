package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
	"gdbm/internal/server/wire"
)

// defaultChunkRows bounds how many rows accumulate before a flush. Small
// enough that a slow consumer sees first rows promptly and a cancelled
// query stops within one chunk of work; large enough that framing and
// flush syscalls amortize.
const defaultChunkRows = 256

// errNoInBandError marks an encoding with no way to signal failure after
// the response has committed; the handler must abort the connection.
var errNoInBandError = errors.New("encoding cannot carry an in-band error")

// respStreamer is a plan.Sink wired to an HTTP response: rows go to the
// client as produced, then exactly one of finish (success trailer) or
// abort (failure) ends the stream.
type respStreamer interface {
	plan.Sink
	// committed reports whether response bytes are already on the wire;
	// before that, failures can still answer a plain HTTP error status.
	committed() bool
	// finish ends a successful stream with the encoding's trailer.
	finish(elapsed time.Duration) error
	// abort reports a post-commit failure in-band when the encoding can;
	// errNoInBandError (or a write failure) tells the handler to abort
	// the connection instead.
	abort(status int, msg string) error
}

// newRespStream negotiates the response encoding: an Accept header naming
// the wire content type selects binary framing, anything else streams the
// JSON shape the buffered path always produced.
func (s *Server) newRespStream(w http.ResponseWriter, r *http.Request) respStreamer {
	flusher, _ := w.(http.Flusher)
	chunks := s.metrics.Counter("server.stream.chunks")
	if strings.Contains(r.Header.Get("Accept"), wire.ContentType) {
		return &binStream{w: w, flush: flusher, bw: wire.NewWriter(w), chunk: s.chunkRows, chunks: chunks}
	}
	return &jsonStream{w: w, flush: flusher, chunk: s.chunkRows, chunks: chunks}
}

// jsonStream streams the exact byte shape of the buffered JSON encoding —
// {"cols":...,"rows":[...],"elapsed_ms":...}\n — writing rows as they
// arrive and flushing every chunk rows. Compositionality of JSON encoding
// makes the concatenation of per-element json.Marshal calls identical to
// one json.Encoder pass over the whole queryResponse; the twin tests pin
// this byte-for-byte.
type jsonStream struct {
	w      http.ResponseWriter
	flush  http.Flusher // nil when the writer cannot flush
	chunk  int
	chunks *obs.Counter // nil in unit tests that build the stream directly

	began      bool
	rows       int
	sinceFlush int
}

func (j *jsonStream) Cols(cols []string) error {
	if cols == nil {
		cols = []string{}
	}
	b, err := json.Marshal(cols)
	if err != nil {
		return err
	}
	j.w.Header().Set("Content-Type", "application/json")
	j.w.WriteHeader(http.StatusOK)
	j.began = true
	buf := append([]byte(`{"cols":`), b...)
	buf = append(buf, `,"rows":[`...)
	_, err = j.w.Write(buf)
	return err
}

func (j *jsonStream) Row(vals []model.Value) error {
	row := make([]any, len(vals))
	for i, v := range vals {
		row[i] = v.Native()
	}
	b, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if j.rows > 0 {
		b = append([]byte{','}, b...)
	}
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	j.rows++
	j.sinceFlush++
	if j.sinceFlush >= j.chunk {
		j.sinceFlush = 0
		if j.chunks != nil {
			j.chunks.Inc()
		}
		if j.flush != nil {
			j.flush.Flush()
		}
	}
	return nil
}

func (j *jsonStream) committed() bool { return j.began }

func (j *jsonStream) finish(elapsed time.Duration) error {
	if !j.began {
		if err := j.Cols(nil); err != nil {
			return err
		}
	}
	b, err := json.Marshal(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		return err
	}
	buf := append([]byte(`],"elapsed_ms":`), b...)
	buf = append(buf, '}', '\n')
	if _, err := j.w.Write(buf); err != nil {
		return err
	}
	if j.flush != nil {
		j.flush.Flush()
	}
	return nil
}

func (j *jsonStream) abort(int, string) error { return errNoInBandError }

// binStream frames rows per the wire protocol, buffering up to chunk rows
// per Chunk frame. A post-commit failure becomes an in-band Error frame,
// so a binary client can always distinguish truncation from completion.
type binStream struct {
	w      http.ResponseWriter
	flush  http.Flusher
	bw     *wire.Writer
	chunk  int
	chunks *obs.Counter // nil in unit tests that build the stream directly

	began bool
	rows  int
	buf   [][]model.Value
}

func (b *binStream) Cols(cols []string) error {
	b.w.Header().Set("Content-Type", wire.ContentType)
	b.w.WriteHeader(http.StatusOK)
	b.began = true
	return b.bw.Header(cols)
}

func (b *binStream) Row(vals []model.Value) error {
	b.buf = append(b.buf, vals) // plan.Stream hands each row a fresh slice
	b.rows++
	if len(b.buf) >= b.chunk {
		return b.flushChunk()
	}
	return nil
}

func (b *binStream) flushChunk() error {
	if len(b.buf) == 0 {
		return nil
	}
	if err := b.bw.Chunk(b.buf); err != nil {
		return err
	}
	b.buf = b.buf[:0]
	if b.chunks != nil {
		b.chunks.Inc()
	}
	if b.flush != nil {
		b.flush.Flush()
	}
	return nil
}

func (b *binStream) committed() bool { return b.began }

func (b *binStream) finish(elapsed time.Duration) error {
	if !b.began {
		if err := b.Cols(nil); err != nil {
			return err
		}
	}
	if err := b.flushChunk(); err != nil {
		return err
	}
	if err := b.bw.End(b.rows, elapsed); err != nil {
		return err
	}
	if b.flush != nil {
		b.flush.Flush()
	}
	return nil
}

func (b *binStream) abort(status int, msg string) error {
	// Buffered rows are dropped: the client discards partial rows on an
	// Error frame anyway, and the frame must go out before the peer's
	// deadline, not after one more chunk.
	if err := b.bw.Error(status, msg); err != nil {
		return err
	}
	if b.flush != nil {
		b.flush.Flush()
	}
	return nil
}
