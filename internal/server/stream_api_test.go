package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
	"gdbm/internal/server"
	"gdbm/internal/server/wire"
)

// streamStub is a stubEngine with native streaming: it emits rows one at a
// time, honoring ctx between rows, so tests can drive mid-stream behavior
// (cancellation, failure) that a materializing stub can never produce.
type streamStub struct {
	stubEngine
	rows     int           // emit this many rows; < 0 streams forever
	failAt   int           // if > 0, fail after emitting failAt rows
	returned chan error    // when non-nil, receives QueryStream's return
	started  chan struct{} // when non-nil, closed after the first row
}

func (e *streamStub) QueryStream(ctx context.Context, stmt string, sink plan.Sink) (err error) {
	if e.returned != nil {
		defer func() { e.returned <- err }()
	}
	if err = sink.Cols([]string{"i"}); err != nil {
		return err
	}
	for i := 0; e.rows < 0 || i < e.rows; i++ {
		if e.failAt > 0 && i == e.failAt {
			return errors.New("exec failed mid-stream")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err = sink.Row([]model.Value{model.Int(int64(i))}); err != nil {
			return err
		}
		if e.started != nil && i == 0 {
			close(e.started)
		}
	}
	return nil
}

func newStreamServer(t *testing.T, stub engine.Engine, chunkRows int) (*obs.Registry, *httptest.Server) {
	t.Helper()
	m := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Engines:     []string{"stub"},
		Open:        func(string) (engine.Engine, error) { return stub, nil },
		Interactive: relaxed,
		Batch:       relaxed,
		Metrics:     m,
		ChunkRows:   chunkRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return m, ts
}

func queryReq(t *testing.T, url, accept string) *http.Request {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"stmt": "SELECT ORDER", "engine": "stub"})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return req
}

// TestJSONAndBinaryCarrySameResult posts the same query with and without
// Accept: application/x-gdbw and requires the two encodings to carry the
// same result — cols, every row value, and row count — across a stream
// large enough to span several chunk flushes.
func TestJSONAndBinaryCarrySameResult(t *testing.T) {
	const rows = 600 // > 2 chunks at the explicit chunk size below
	_, ts := newStreamServer(t, &streamStub{rows: rows}, 256)

	// JSON side: keep rows as raw JSON for an exact representation.
	resp, err := http.DefaultClient.Do(queryReq(t, ts.URL, ""))
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d: %s", resp.StatusCode, jsonBody)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	var jr struct {
		Cols []string        `json:"cols"`
		Rows json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(jsonBody, &jr); err != nil {
		t.Fatalf("json body: %v", err)
	}

	// Binary side: reassemble the framed stream.
	resp, err = http.DefaultClient.Do(queryReq(t, ts.URL, wire.ContentType))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("binary content type %q", ct)
	}
	br, err := wire.Collect(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if br.End.Rows != rows || len(br.Rows) != rows {
		t.Fatalf("binary rows: got %d frames / %d declared, want %d", len(br.Rows), br.End.Rows, rows)
	}

	// Compare through a common JSON rendering: the binary rows re-encoded
	// as JSON must match the JSON response's rows byte for byte.
	native := make([][]any, len(br.Rows))
	for i, row := range br.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = v.Native()
		}
		native[i] = vals
	}
	binRows, err := json.Marshal(native)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(binRows, jr.Rows) {
		t.Fatalf("encodings diverge:\n  json:   %.120s\n  binary: %.120s", jr.Rows, binRows)
	}
	if len(jr.Cols) != 1 || jr.Cols[0] != "i" || len(br.Cols) != 1 || br.Cols[0] != "i" {
		t.Fatalf("cols diverge: json %v, binary %v", jr.Cols, br.Cols)
	}
}

// TestBinaryMidStreamFailureIsInBand: a query that fails after rows are on
// the wire cannot change its 200 status, but the binary client must still
// see a hard error, not a short result.
func TestBinaryMidStreamFailureIsInBand(t *testing.T) {
	_, ts := newStreamServer(t, &streamStub{rows: -1, failAt: 10}, 4)
	resp, err := http.DefaultClient.Do(queryReq(t, ts.URL, wire.ContentType))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want committed 200", resp.StatusCode)
	}
	_, err = wire.Collect(resp.Body)
	var se *wire.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("Collect error %v, want *wire.StatusError", err)
	}
	if se.Status != http.StatusUnprocessableEntity || se.Msg == "" {
		t.Fatalf("error frame: %+v", se)
	}
}

// TestJSONMidStreamFailureAbortsConnection: the JSON encoding has no in-band
// error channel, so a post-commit failure must surface as a killed
// connection (client read error), never as a silently truncated-but-valid
// body.
func TestJSONMidStreamFailureAbortsConnection(t *testing.T) {
	m, ts := newStreamServer(t, &streamStub{rows: -1, failAt: 10}, 4)
	resp, err := http.DefaultClient.Do(queryReq(t, ts.URL, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		// If the read somehow completed, the body must at least not parse
		// as a complete response.
		var out map[string]any
		if json.Unmarshal(body, &out) == nil {
			t.Fatalf("mid-stream failure produced a parseable body: %s", body)
		}
	}
	if got := m.Counters()["server.write_errors"]; got == 0 {
		t.Error("write_errors not counted for aborted stream")
	}
}

// TestMidStreamCancellation: a client that walks away mid-stream must
// cancel the executing query promptly (ctx.Err() reaches the engine) and
// leave no goroutine behind.
func TestMidStreamCancellation(t *testing.T) {
	stub := &streamStub{rows: -1, returned: make(chan error, 1), started: make(chan struct{})}
	_, ts := newStreamServer(t, stub, 8)

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req := queryReq(t, ts.URL, "").WithContext(ctx)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Wait until rows are actually flowing, then hang up mid-stream.
	select {
	case <-stub.started:
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("stream never started")
	}
	buf := make([]byte, 512)
	_, _ = resp.Body.Read(buf)
	cancel()
	resp.Body.Close()

	// The engine must observe the cancellation promptly — an infinite
	// stream otherwise never returns and this times out.
	select {
	case execErr := <-stub.returned:
		if execErr == nil {
			t.Fatal("infinite stream returned nil; cancellation did not reach the engine")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("QueryStream still running 5s after client disconnect")
	}

	// No goroutine leak: the handler and its timers wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
