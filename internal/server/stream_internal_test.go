package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// TestJSONStreamMatchesEncoderBytes pins the streamed JSON encoding to the
// buffered one byte for byte: concatenating per-element json.Marshal output
// with literal punctuation must reproduce exactly what json.Encoder emits
// for the whole queryResponse. Any drift (escaping, float formatting, field
// order, trailing newline) breaks every client that parsed the old shape.
func TestJSONStreamMatchesEncoderBytes(t *testing.T) {
	const elapsed = 1500 * time.Microsecond
	cases := []struct {
		name string
		cols []string
		rows [][]model.Value
	}{
		{"empty", nil, nil},
		{"cols-no-rows", []string{"a", "b"}, nil},
		{"one-int", []string{"n"}, [][]model.Value{{model.Int(1)}}},
		{"mixed-types", []string{"i", "f", "s", "b", "z"}, [][]model.Value{
			{model.Int(-42), model.Float(3.25), model.Str("plain"), model.Bool(true), model.Null()},
			{model.Int(1 << 40), model.Float(1e21), model.Str(""), model.Bool(false), model.Null()},
		}},
		{"escaping", []string{"s"}, [][]model.Value{
			{model.Str(`<script>&"quotes"\backslash`)},
			{model.Str("tab\tnewline\nunicodeé")},
		}},
		{"many-rows-cross-chunk", []string{"i"}, func() [][]model.Value {
			rows := make([][]model.Value, 7)
			for i := range rows {
				rows[i] = []model.Value{model.Int(int64(i))}
			}
			return rows
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			// chunk=2 so the cross-chunk case flushes mid-stream: flush
			// boundaries must never alter bytes.
			js := &jsonStream{w: rec, chunk: 2}
			if c.cols != nil || len(c.rows) > 0 {
				if err := js.Cols(c.cols); err != nil {
					t.Fatal(err)
				}
			}
			for _, row := range c.rows {
				if err := js.Row(row); err != nil {
					t.Fatal(err)
				}
			}
			if err := js.finish(elapsed); err != nil {
				t.Fatal(err)
			}

			var want bytes.Buffer
			res := &plan.Result{Cols: c.cols, Rows: c.rows}
			if err := json.NewEncoder(&want).Encode(toWire(res, elapsed)); err != nil {
				t.Fatal(err)
			}
			if got := rec.Body.String(); got != want.String() {
				t.Fatalf("streamed bytes diverge from buffered encoder\n  streamed: %q\n  buffered: %q", got, want.String())
			}
		})
	}
}
