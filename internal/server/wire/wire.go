// Package wire is the length-prefixed binary framing protocol of the
// serving layer. A framed stream opens with a fixed magic and version, then
// carries self-delimiting frames:
//
//	stream  = "GDBW" version(1 byte) frame*
//	frame   = type(1 byte) length(uvarint) payload(length bytes)
//
// Frame types:
//
//	Request  client→server: a JSON query request, framed so one code path
//	         carries both directions.
//	Header   server→client: the result columns, sent exactly once before
//	         any rows.
//	Chunk    server→client: a batch of result rows, flushed as execution
//	         produces them.
//	Error    server→client: a mid-stream failure after the HTTP status is
//	         already committed; carries an HTTP-equivalent status code and
//	         message. A stream ending in Error has no End frame.
//	End      server→client: successful termination; carries the total row
//	         count and server-side elapsed time. A stream that stops
//	         without End or Error was truncated and must be treated as
//	         failed, never as a short result.
//
// Values ride each Chunk in the model layer's binary value encoding
// (model.Value.MarshalBinary), length-prefixed per value, so the cost of a
// row is a few varints plus the payload bytes — no JSON in the hot path.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"gdbm/internal/model"
)

// Magic opens every framed stream; Version is the only protocol version.
const (
	Magic   = "GDBW"
	Version = 1
)

// ContentType is the media type negotiated for framed streams: a request
// with this Content-Type carries a framed Request body, and a request whose
// Accept includes it asks for a framed response.
const ContentType = "application/x-gdbw"

// FrameType tags a frame.
type FrameType byte

const (
	FrameRequest FrameType = 1
	FrameHeader  FrameType = 2
	FrameChunk   FrameType = 3
	FrameError   FrameType = 4
	FrameEnd     FrameType = 5
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameRequest:
		return "request"
	case FrameHeader:
		return "header"
	case FrameChunk:
		return "chunk"
	case FrameError:
		return "error"
	case FrameEnd:
		return "end"
	}
	return fmt.Sprintf("frame(%d)", byte(t))
}

// MaxFrame bounds a declared payload length on the read side. A corrupt or
// hostile length prefix must not turn into an unbounded allocation; chunks
// the server writes are bounded by the chunk row budget, far below this.
const MaxFrame = 16 << 20

// ErrTruncated reports a stream that ended mid-frame or, via Collect,
// without a terminal End/Error frame.
var ErrTruncated = errors.New("wire: truncated stream")

// Writer emits a framed stream onto w. The magic and version are written
// lazily before the first frame. Writer does no buffering of its own: each
// frame lands on w whole, so the caller controls flush boundaries.
type Writer struct {
	w       io.Writer
	started bool
	buf     []byte
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	_, err := w.w.Write(append([]byte(Magic), Version))
	return err
}

// frame writes one complete frame.
func (w *Writer) frame(t FrameType, payload []byte) error {
	if err := w.start(); err != nil {
		return err
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen64)
	hdr[0] = byte(t)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.w.Write(payload)
	return err
}

// Request frames a JSON request body.
func (w *Writer) Request(body []byte) error { return w.frame(FrameRequest, body) }

// Header frames the result columns.
func (w *Writer) Header(cols []string) error {
	b := binary.AppendUvarint(w.buf[:0], uint64(len(cols)))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
	}
	w.buf = b[:0]
	return w.frame(FrameHeader, b)
}

// Chunk frames a batch of rows.
func (w *Writer) Chunk(rows [][]model.Value) error {
	b := binary.AppendUvarint(w.buf[:0], uint64(len(rows)))
	for _, row := range rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, v := range row {
			enc, err := v.MarshalBinary()
			if err != nil {
				return err
			}
			b = binary.AppendUvarint(b, uint64(len(enc)))
			b = append(b, enc...)
		}
	}
	w.buf = b[:0]
	return w.frame(FrameChunk, b)
}

// Error frames a mid-stream failure with an HTTP-equivalent status code.
func (w *Writer) Error(status int, msg string) error {
	b := binary.AppendUvarint(w.buf[:0], uint64(status))
	b = append(b, msg...)
	w.buf = b[:0]
	return w.frame(FrameError, b)
}

// End frames successful termination with the total row count and the
// server-side elapsed time.
func (w *Writer) End(rows int, elapsed time.Duration) error {
	b := binary.AppendUvarint(w.buf[:0], uint64(rows))
	b = binary.AppendUvarint(b, uint64(elapsed.Nanoseconds()))
	w.buf = b[:0]
	return w.frame(FrameEnd, b)
}

// Frame is one decoded frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// Reader decodes a framed stream from r, validating the magic and version
// before the first frame.
type Reader struct {
	r       *byteReader
	started bool
}

// byteReader adapts an io.Reader to io.ByteReader without buffering ahead
// (binary.ReadUvarint must not consume past the varint).
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, io.EOF
		}
		return 0, err
	}
	return b.one[0], nil
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: &byteReader{r: r}} }

func (r *Reader) start() error {
	if r.started {
		return nil
	}
	r.started = true
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(r.r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return ErrTruncated
		}
		return err
	}
	if string(hdr[:len(Magic)]) != Magic {
		return fmt.Errorf("wire: bad magic %q", hdr[:len(Magic)])
	}
	if hdr[len(Magic)] != Version {
		return fmt.Errorf("wire: unsupported version %d", hdr[len(Magic)])
	}
	return nil
}

// Next reads one frame. io.EOF marks a clean end of input between frames;
// ErrTruncated an end inside one.
func (r *Reader) Next() (Frame, error) {
	if err := r.start(); err != nil {
		return Frame{}, err
	}
	t, err := r.r.ReadByte()
	if err != nil {
		return Frame{}, err // io.EOF between frames is the caller's signal
	}
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Frame{}, truncated(err)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r.r, payload); err != nil {
		return Frame{}, truncated(err)
	}
	return Frame{Type: FrameType(t), Payload: payload}, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return err
}

// DecodeHeader decodes a Header frame payload.
func DecodeHeader(payload []byte) ([]string, error) {
	n, rest, err := uvarint(payload)
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, capHint(n, 1024))
	for i := uint64(0); i < n; i++ {
		var l uint64
		l, rest, err = uvarint(rest)
		if err != nil {
			return nil, err
		}
		if uint64(len(rest)) < l {
			return nil, ErrTruncated
		}
		cols = append(cols, string(rest[:l]))
		rest = rest[l:]
	}
	return cols, nil
}

// DecodeChunk decodes a Chunk frame payload.
func DecodeChunk(payload []byte) ([][]model.Value, error) {
	n, rest, err := uvarint(payload)
	if err != nil {
		return nil, err
	}
	rows := make([][]model.Value, 0, capHint(n, 4096))
	for i := uint64(0); i < n; i++ {
		var nv uint64
		nv, rest, err = uvarint(rest)
		if err != nil {
			return nil, err
		}
		row := make([]model.Value, 0, capHint(nv, 1024))
		for j := uint64(0); j < nv; j++ {
			var l uint64
			l, rest, err = uvarint(rest)
			if err != nil {
				return nil, err
			}
			if uint64(len(rest)) < l {
				return nil, ErrTruncated
			}
			v, err := model.UnmarshalValue(rest[:l])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			rest = rest[l:]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DecodeError decodes an Error frame payload.
func DecodeError(payload []byte) (status int, msg string, err error) {
	s, rest, err := uvarint(payload)
	if err != nil {
		return 0, "", err
	}
	return int(s), string(rest), nil
}

// End is a decoded End frame.
type End struct {
	Rows    int
	Elapsed time.Duration
}

// DecodeEnd decodes an End frame payload.
func DecodeEnd(payload []byte) (End, error) {
	rows, rest, err := uvarint(payload)
	if err != nil {
		return End{}, err
	}
	ns, _, err := uvarint(rest)
	if err != nil {
		return End{}, err
	}
	return End{Rows: int(rows), Elapsed: time.Duration(ns)}, nil
}

func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

// capHint bounds a declared count before it becomes an allocation size.
func capHint(declared uint64, limit int) int {
	if declared < uint64(limit) {
		return int(declared)
	}
	return limit
}

// Result is a fully reassembled framed response.
type Result struct {
	Cols []string
	Rows [][]model.Value
	End  End
}

// Collect reassembles a complete framed response from r. A stream that
// terminates in an Error frame returns a *StatusError; one that ends
// without End or Error returns ErrTruncated — truncation is never silently
// a short result.
func Collect(r io.Reader) (*Result, error) {
	rd := NewReader(r)
	res := &Result{}
	sawHeader, sawEnd := false, false
	for {
		f, err := rd.Next()
		if errors.Is(err, io.EOF) {
			if !sawEnd {
				return nil, ErrTruncated
			}
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case FrameHeader:
			if sawHeader {
				return nil, fmt.Errorf("wire: duplicate header frame")
			}
			sawHeader = true
			if res.Cols, err = DecodeHeader(f.Payload); err != nil {
				return nil, err
			}
		case FrameChunk:
			if !sawHeader {
				return nil, fmt.Errorf("wire: chunk before header")
			}
			rows, err := DecodeChunk(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, rows...)
		case FrameError:
			status, msg, err := DecodeError(f.Payload)
			if err != nil {
				return nil, err
			}
			return nil, &StatusError{Status: status, Msg: msg}
		case FrameEnd:
			if !sawHeader {
				return nil, fmt.Errorf("wire: end before header")
			}
			if res.End, err = DecodeEnd(f.Payload); err != nil {
				return nil, err
			}
			sawEnd = true
		default:
			return nil, fmt.Errorf("wire: unexpected %s frame in response", f.Type)
		}
	}
}

// StatusError is a mid-stream Error frame surfaced as a Go error.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Status, e.Msg)
}
