package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"gdbm/internal/model"
)

func sampleRows() [][]model.Value {
	return [][]model.Value{
		{model.Int(1), model.Str("a"), model.Bool(true)},
		{model.Int(-42), model.Str(""), model.Null()},
		{model.Float(3.5), model.Str("päröt\x00bytes"), model.Bool(false)},
	}
}

// TestRoundTrip frames a full response and reassembles it byte-exactly.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cols := []string{"id", "name", "ok"}
	if err := w.Header(cols); err != nil {
		t.Fatal(err)
	}
	rows := sampleRows()
	if err := w.Chunk(rows[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Chunk(rows[2:]); err != nil {
		t.Fatal(err)
	}
	if err := w.End(len(rows), 1500*time.Microsecond); err != nil {
		t.Fatal(err)
	}

	res, err := Collect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cols, cols) {
		t.Errorf("cols: %v, want %v", res.Cols, cols)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("rows: %d, want %d", len(res.Rows), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if !res.Rows[i][j].Equal(rows[i][j]) || res.Rows[i][j].Kind() != rows[i][j].Kind() {
				t.Errorf("row %d col %d: %v (%v), want %v (%v)",
					i, j, res.Rows[i][j], res.Rows[i][j].Kind(), rows[i][j], rows[i][j].Kind())
			}
		}
	}
	if res.End.Rows != 3 || res.End.Elapsed != 1500*time.Microsecond {
		t.Errorf("end: %+v", res.End)
	}
}

// TestEmptyResult: zero rows still need header and end.
func TestEmptyResult(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Header(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.End(0, 0); err != nil {
		t.Fatal(err)
	}
	res, err := Collect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 0 || len(res.Rows) != 0 {
		t.Fatalf("%+v", res)
	}
}

// TestErrorFrame: a mid-stream Error frame surfaces as StatusError with the
// partial rows discarded.
func TestErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Header([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Chunk([][]model.Value{{model.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Error(504, "query deadline exceeded"); err != nil {
		t.Fatal(err)
	}
	_, err := Collect(&buf)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.Status != 504 || se.Msg != "query deadline exceeded" {
		t.Fatalf("%+v", se)
	}
}

// TestTruncationIsNeverAShortResult: cutting the stream at every byte
// boundary must yield an error, never a silently short result.
func TestTruncationIsNeverAShortResult(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Header([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Chunk([][]model.Value{{model.Int(7)}, {model.Str("s")}}); err != nil {
		t.Fatal(err)
	}
	if err := w.End(2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		if _, err := Collect(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d was accepted as a valid result", cut, len(whole))
		}
	}
	if _, err := Collect(bytes.NewReader(whole)); err != nil {
		t.Fatalf("whole stream: %v", err)
	}
}

// TestBadMagicAndVersion rejects foreign streams before any allocation.
func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(strings.NewReader("HTTP/1.1 200 OK")).Next(); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(Magic), 99)
	if _, err := NewReader(bytes.NewReader(bad)).Next(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
}

// TestOversizedFrameRejected: a hostile length prefix must not allocate.
func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version)
	buf.WriteByte(byte(FrameChunk))
	buf.Write(binary.AppendUvarint(nil, MaxFrame+1))
	if _, err := NewReader(&buf).Next(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: %v", err)
	}
}

// TestRequestFrame round-trips a framed request body.
func TestRequestFrame(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"stmt":"SELECT ORDER","engine":"gstore"}`)
	if err := NewWriter(&buf).Request(body); err != nil {
		t.Fatal(err)
	}
	f, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameRequest || !bytes.Equal(f.Payload, body) {
		t.Fatalf("frame %v payload %q", f.Type, f.Payload)
	}
}

// TestCollectRejectsProtocolViolations: chunks before the header, duplicate
// headers and unknown frame types are hard errors.
func TestCollectRejectsProtocolViolations(t *testing.T) {
	frame := func(parts ...func(w *Writer) error) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range parts {
			if err := p(w); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"chunk before header": frame(func(w *Writer) error {
			return w.Chunk([][]model.Value{{model.Int(1)}})
		}),
		"duplicate header": frame(
			func(w *Writer) error { return w.Header([]string{"a"}) },
			func(w *Writer) error { return w.Header([]string{"b"}) },
		),
		"request in response": frame(func(w *Writer) error { return w.Request([]byte("x")) }),
	}
	for name, stream := range cases {
		if _, err := Collect(bytes.NewReader(stream)); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: err = %v, want protocol violation", name, err)
		}
	}
}
