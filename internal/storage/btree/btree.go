// Package btree implements an on-disk B+tree over the pager: an ordered,
// persistent key/value map. It fills the role the survey assigns to backend
// key/value stores such as TokyoCabinet under VertexDB — a disk B-tree that a
// graph layer is built on — and also backs ordered secondary indexes.
//
// Leaves are chained for range scans. Deletion is by tombstone-free removal
// without rebalancing: leaves may underflow (a standard trade-off, as in
// append-mostly stores); space from emptied subtrees is reclaimed when the
// tree is rebuilt through Compact.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"gdbm/internal/storage/pager"
)

const (
	typeLeaf     = 1
	typeInternal = 2
)

// MaxEntry bounds len(key)+len(value) so that a node always holds at least
// two entries.
const MaxEntry = pager.PayloadSize/3 - 16

// Tree is a B+tree rooted in a page file. It is safe for concurrent use; all
// operations take the tree lock (single-writer, and readers are serialized
// with writers because the buffer pool is shared).
type Tree struct {
	mu     sync.Mutex
	pg     *pager.Pager
	header pager.PageID
	root   pager.PageID
	count  uint64
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only, len == len(keys)
	children []pager.PageID // internal only, len == len(keys)+1
	next     pager.PageID   // leaf chain
}

// Create allocates a new empty tree in pg and returns it along with the
// header page that identifies it (persist the header id to reopen the tree).
func Create(pg *pager.Pager) (*Tree, pager.PageID, error) {
	header, err := pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	rootID, err := pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	t := &Tree{pg: pg, header: header, root: rootID}
	if err := t.writeNode(rootID, &node{leaf: true}); err != nil {
		return nil, 0, err
	}
	if err := t.writeHeader(); err != nil {
		return nil, 0, err
	}
	return t, header, nil
}

// Load reopens a tree previously created in pg with the given header page.
func Load(pg *pager.Pager, header pager.PageID) (*Tree, error) {
	t := &Tree{pg: pg, header: header}
	buf, err := pg.Read(header)
	if err != nil {
		return nil, err
	}
	t.root = pager.PageID(binary.BigEndian.Uint32(buf[0:4]))
	t.count = binary.BigEndian.Uint64(buf[4:12])
	if t.root == 0 {
		return nil, fmt.Errorf("btree: header page %d has no root", header)
	}
	return t, nil
}

func (t *Tree) writeHeader() error {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[0:4], uint32(t.root))
	binary.BigEndian.PutUint64(buf[4:12], t.count)
	return t.pg.Write(t.header, buf)
}

// Len returns the number of stored keys.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.count)
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i, found := search(n.keys, key)
			if !found {
				return nil, false, nil
			}
			return append([]byte(nil), n.vals[i]...), true, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key)+len(val) > MaxEntry {
		return fmt.Errorf("btree: entry size %d exceeds max %d", len(key)+len(val), MaxEntry)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted, right, added, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if right != 0 {
		// Root split: grow the tree by one level.
		newRoot, err := t.pg.Allocate()
		if err != nil {
			return err
		}
		rn := &node{
			keys:     [][]byte{promoted},
			children: []pager.PageID{t.root, right},
		}
		if err := t.writeNode(newRoot, rn); err != nil {
			return err
		}
		t.root = newRoot
	}
	if added {
		t.count++
	}
	return t.writeHeader()
}

// insert descends to the leaf, inserts, and splits on overflow. It returns
// the separator key and new right sibling if this node split, and whether a
// new key was added (false for replacement).
func (t *Tree) insert(id pager.PageID, key, val []byte) (promoted []byte, right pager.PageID, added bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, false, err
	}
	if n.leaf {
		i, found := search(n.keys, key)
		if found {
			n.vals[i] = append([]byte(nil), val...)
		} else {
			n.keys = insertAt(n.keys, i, append([]byte(nil), key...))
			n.vals = insertAt(n.vals, i, append([]byte(nil), val...))
			added = true
		}
		promoted, right, err = t.splitIfNeeded(id, n)
		return promoted, right, added, err
	}
	ci := childIndex(n.keys, key)
	p, r, added, err := t.insert(n.children[ci], key, val)
	if err != nil {
		return nil, 0, false, err
	}
	if r != 0 {
		n.keys = insertAt(n.keys, ci, p)
		n.children = insertAt(n.children, ci+1, r)
		promoted, right, err = t.splitIfNeeded(id, n)
		return promoted, right, added, err
	}
	return nil, 0, added, nil
}

// splitIfNeeded persists n at id, splitting it first when it no longer fits
// in a page.
func (t *Tree) splitIfNeeded(id pager.PageID, n *node) ([]byte, pager.PageID, error) {
	if t.encodedSize(n) <= pager.PayloadSize {
		return nil, 0, t.writeNode(id, n)
	}
	mid := len(n.keys) / 2
	rightID, err := t.pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	var sep []byte
	var rightNode *node
	if n.leaf {
		sep = append([]byte(nil), n.keys[mid]...)
		rightNode = &node{
			leaf: true,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rightID
	} else {
		// The middle key moves up; it is not duplicated below.
		sep = append([]byte(nil), n.keys[mid]...)
		rightNode = &node{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]pager.PageID(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.writeNode(rightID, rightNode); err != nil {
		return nil, 0, err
	}
	if err := t.writeNode(id, n); err != nil {
		return nil, 0, err
	}
	return sep, rightID, nil
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.leaf {
			i, found := search(n.keys, key)
			if !found {
				return false, nil
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			if err := t.writeNode(id, n); err != nil {
				return false, err
			}
			t.count--
			return true, t.writeHeader()
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// Ascend calls fn for each key >= start in ascending order until fn returns
// false. A nil start begins at the smallest key.
func (t *Tree) Ascend(start []byte, fn func(key, val []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for id != 0 {
				for i, k := range n.keys {
					if start != nil && bytes.Compare(k, start) < 0 {
						continue
					}
					if !fn(append([]byte(nil), k...), append([]byte(nil), n.vals[i]...)) {
						return nil
					}
				}
				id = n.next
				if id == 0 {
					return nil
				}
				n, err = t.readNode(id)
				if err != nil {
					return err
				}
			}
			return nil
		}
		id = n.children[childIndex(n.keys, start)]
	}
}

// AscendPrefix calls fn for each key with the given prefix in order.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key, val []byte) bool) error {
	return t.Ascend(prefix, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		return fn(k, v)
	})
}

// Compact rewrites the tree's live entries into a fresh tree in the same
// pager and returns it with its new header page. The old pages are freed.
func (t *Tree) Compact() (*Tree, pager.PageID, error) {
	type kv struct{ k, v []byte }
	var all []kv
	if err := t.Ascend(nil, func(k, v []byte) bool {
		all = append(all, kv{k, v})
		return true
	}); err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	oldPages := t.collectPages(t.root)
	oldHeader := t.header
	t.mu.Unlock()
	nt, header, err := Create(t.pg)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range all {
		if err := nt.Put(e.k, e.v); err != nil {
			return nil, 0, err
		}
	}
	for _, p := range oldPages {
		if err := t.pg.Free(p); err != nil {
			return nil, 0, err
		}
	}
	if err := t.pg.Free(oldHeader); err != nil {
		return nil, 0, err
	}
	return nt, header, nil
}

func (t *Tree) collectPages(id pager.PageID) []pager.PageID {
	n, err := t.readNode(id)
	if err != nil {
		return nil
	}
	out := []pager.PageID{id}
	if !n.leaf {
		for _, c := range n.children {
			out = append(out, t.collectPages(c)...)
		}
	}
	return out
}

// search finds the position of key in keys, reporting exact match.
func search(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndex picks the child subtree for key in an internal node. A nil key
// selects the leftmost child.
func childIndex(keys [][]byte, key []byte) int {
	if key == nil {
		return 0
	}
	i, found := search(keys, key)
	if found {
		return i + 1
	}
	return i
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// --- serialization ---

func (t *Tree) encodedSize(n *node) int {
	size := 1 + 2 // type + nkeys
	if n.leaf {
		size += 4 // next pointer
		for i := range n.keys {
			size += uvarintLen(uint64(len(n.keys[i]))) + len(n.keys[i])
			size += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		}
	} else {
		size += 4 // child0
		for i := range n.keys {
			size += uvarintLen(uint64(len(n.keys[i]))) + len(n.keys[i]) + 4
		}
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (t *Tree) writeNode(id pager.PageID, n *node) error {
	buf := make([]byte, 0, pager.PayloadSize)
	if n.leaf {
		buf = append(buf, typeLeaf)
	} else {
		buf = append(buf, typeInternal)
	}
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(n.keys)))
	buf = append(buf, u16[:]...)
	var u32 [4]byte
	if n.leaf {
		binary.BigEndian.PutUint32(u32[:], uint32(n.next))
		buf = append(buf, u32[:]...)
		for i := range n.keys {
			buf = binary.AppendUvarint(buf, uint64(len(n.keys[i])))
			buf = append(buf, n.keys[i]...)
			buf = binary.AppendUvarint(buf, uint64(len(n.vals[i])))
			buf = append(buf, n.vals[i]...)
		}
	} else {
		binary.BigEndian.PutUint32(u32[:], uint32(n.children[0]))
		buf = append(buf, u32[:]...)
		for i := range n.keys {
			buf = binary.AppendUvarint(buf, uint64(len(n.keys[i])))
			buf = append(buf, n.keys[i]...)
			binary.BigEndian.PutUint32(u32[:], uint32(n.children[i+1]))
			buf = append(buf, u32[:]...)
		}
	}
	if len(buf) > pager.PayloadSize {
		return fmt.Errorf("btree: node %d overflows page (%d bytes)", id, len(buf))
	}
	return t.pg.Write(id, buf)
}

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	buf, err := t.pg.Read(id)
	if err != nil {
		return nil, err
	}
	if len(buf) < 3 {
		return nil, fmt.Errorf("btree: short node page %d", id)
	}
	n := &node{}
	typ := buf[0]
	nkeys := int(binary.BigEndian.Uint16(buf[1:3]))
	pos := 3
	readUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("btree: corrupt varint in page %d", id)
		}
		pos += w
		return v, nil
	}
	switch typ {
	case typeLeaf:
		n.leaf = true
		n.next = pager.PageID(binary.BigEndian.Uint32(buf[pos : pos+4]))
		pos += 4
		for i := 0; i < nkeys; i++ {
			kl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			k := append([]byte(nil), buf[pos:pos+int(kl)]...)
			pos += int(kl)
			vl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			v := append([]byte(nil), buf[pos:pos+int(vl)]...)
			pos += int(vl)
			n.keys = append(n.keys, k)
			n.vals = append(n.vals, v)
		}
	case typeInternal:
		n.children = append(n.children, pager.PageID(binary.BigEndian.Uint32(buf[pos:pos+4])))
		pos += 4
		for i := 0; i < nkeys; i++ {
			kl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			k := append([]byte(nil), buf[pos:pos+int(kl)]...)
			pos += int(kl)
			c := pager.PageID(binary.BigEndian.Uint32(buf[pos : pos+4]))
			pos += 4
			n.keys = append(n.keys, k)
			n.children = append(n.children, c)
		}
	default:
		return nil, fmt.Errorf("btree: page %d has unknown node type %d", id, typ)
	}
	return n, nil
}
