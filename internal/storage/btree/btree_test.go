package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"gdbm/internal/storage/pager"
)

func tempTree(t *testing.T) (*Tree, *pager.Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bt.pg")
	pg, err := pager.Open(path, pager.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	tree, _, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pg, path
}

func TestPutGetDelete(t *testing.T) {
	tree, _, _ := tempTree(t)
	if err := tree.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tree.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	// Replace.
	tree.Put([]byte("k1"), []byte("v2"))
	v, _, _ = tree.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Errorf("after replace: %q", v)
	}
	if tree.Len() != 1 {
		t.Errorf("len = %d", tree.Len())
	}
	// Delete.
	ok, err = tree.Delete([]byte("k1"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v %v", ok, err)
	}
	if _, ok, _ := tree.Get([]byte("k1")); ok {
		t.Error("key still present after delete")
	}
	if ok, _ := tree.Delete([]byte("k1")); ok {
		t.Error("double delete reported true")
	}
	if tree.Len() != 0 {
		t.Errorf("len = %d", tree.Len())
	}
}

func TestEmptyAndOversizedKeys(t *testing.T) {
	tree, _, _ := tempTree(t)
	if err := tree.Put(nil, []byte("v")); err == nil {
		t.Error("empty key should fail")
	}
	if err := tree.Put(bytes.Repeat([]byte("k"), MaxEntry), []byte("v")); err == nil {
		t.Error("oversized entry should fail")
	}
	if _, ok, err := tree.Get([]byte("missing")); ok || err != nil {
		t.Errorf("Get missing = %v %v", ok, err)
	}
}

func TestManyKeysSplitAndOrder(t *testing.T) {
	tree, _, _ := tempTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := tree.Put(k, v); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	if tree.Len() != n {
		t.Fatalf("len = %d, want %d", tree.Len(), n)
	}
	// All retrievable.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := tree.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get %s = %q %v %v", k, v, ok, err)
		}
	}
	// Full ascend yields sorted order.
	var prev []byte
	count := 0
	tree.Ascend(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Errorf("ascend visited %d, want %d", count, n)
	}
}

func TestAscendFromStart(t *testing.T) {
	tree, _, _ := tempTree(t)
	for i := 0; i < 100; i++ {
		tree.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	var got []string
	tree.Ascend([]byte("k050"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 5
	})
	want := []string{"k050", "k051", "k052", "k053", "k054"}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestAscendPrefix(t *testing.T) {
	tree, _, _ := tempTree(t)
	tree.Put([]byte("a/1"), []byte("1"))
	tree.Put([]byte("a/2"), []byte("2"))
	tree.Put([]byte("b/1"), []byte("3"))
	var got []string
	tree.AscendPrefix([]byte("a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Errorf("prefix scan = %v", got)
	}
}

func TestPersistenceAcrossReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.pg")
	pg, err := pager.Open(path, pager.Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	tree, header, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tree.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path, pager.Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tree2, err := Load(pg2, header)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 1000 {
		t.Fatalf("reloaded len = %d", tree2.Len())
	}
	v, ok, err := tree2.Get([]byte("k0500"))
	if err != nil || !ok || string(v) != "v500" {
		t.Fatalf("reloaded Get = %q %v %v", v, ok, err)
	}
}

func TestCompactReclaims(t *testing.T) {
	tree, pg, _ := tempTree(t)
	for i := 0; i < 2000; i++ {
		tree.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("x"), 50))
	}
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			tree.Delete([]byte(fmt.Sprintf("k%05d", i)))
		}
	}
	nt, _, err := tree.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if nt.Len() != 1000 {
		t.Fatalf("compacted len = %d", nt.Len())
	}
	v, ok, _ := nt.Get([]byte("k00001"))
	if !ok || len(v) != 50 {
		t.Errorf("compacted Get = %q %v", v, ok)
	}
	if _, ok, _ := nt.Get([]byte("k00000")); ok {
		t.Error("deleted key survived compaction")
	}
	// Freed pages get reused by further inserts rather than growing the file.
	before := pg.Pages()
	for i := 0; i < 500; i++ {
		nt.Put([]byte(fmt.Sprintf("new%05d", i)), []byte("y"))
	}
	after := pg.Pages()
	if after-before > 40 {
		t.Errorf("file grew by %d pages despite free list", after-before)
	}
}

// Property: the tree behaves like a map for arbitrary insert sequences.
func TestTreeMatchesMapQuick(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		tree, _, _ := tempTreeQuick()
		if tree == nil {
			return false
		}
		ref := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("key-%d", op.Key)
			if op.Del {
				delete(ref, k)
				tree.Delete([]byte(k))
			} else {
				v := fmt.Sprintf("v%d", op.Val)
				ref[k] = v
				if err := tree.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
			}
		}
		if tree.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok, err := tree.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Ascend visits exactly the reference keys in sorted order.
		var keys []string
		tree.Ascend(nil, func(k, v []byte) bool { keys = append(keys, string(k)); return true })
		if len(keys) != len(ref) {
			return false
		}
		if !sort.StringsAreSorted(keys) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func tempTreeQuick() (*Tree, *pager.Pager, error) {
	dir, err := os.MkdirTemp("", "btquick")
	if err != nil {
		return nil, nil, err
	}
	quickDirs = append(quickDirs, dir)
	pg, err := pager.Open(filepath.Join(dir, "bt.pg"), pager.Options{PoolPages: 32})
	if err != nil {
		return nil, nil, err
	}
	quickPagers = append(quickPagers, pg)
	tree, _, err := Create(pg)
	return tree, pg, err
}

var (
	quickDirs   []string
	quickPagers []*pager.Pager
)

func TestMain(m *testing.M) {
	code := m.Run()
	for _, pg := range quickPagers {
		pg.Close()
	}
	for _, d := range quickDirs {
		os.RemoveAll(d)
	}
	os.Exit(code)
}
