// Package crashtest is the crash-recovery harness for the disk-backed
// storage stack. It drives a store through a committed workload over a
// vfs.FaultFS, enumerates every fault-injection point the workload
// executes (power cut before each write/sync/truncate, torn writes, fsync
// failures, read-side corruption), simulates the crash, reopens the store
// and asserts the recovery invariants:
//
//  1. Durability — every operation whose commit was acknowledged before
//     the crash is visible after recovery.
//  2. Atomicity — no partially-applied operation is ever visible
//     (Instance.Visible reports an error when it observes one).
//  3. Recoverability — reopening after any crash succeeds; a torn WAL
//     tail is truncated, not reported as corruption.
//  4. Liveness — the recovered store accepts and persists new commits.
//
// The harness is store-agnostic: anything that can open itself over a
// vfs.FS and run a numbered workload can be probed, including the engine
// archetypes (see internal/engines/suite).
package crashtest

import (
	"errors"
	"fmt"

	"gdbm/internal/storage/vfs"
)

// ErrAppliedNotDurable wraps a commit error whose in-memory mutation was
// applied but whose durability barrier (flush/fsync) failed. The harness
// then retries the barrier through Flusher: if the retry reports success,
// the operation counts as acknowledged and must survive a crash — the
// exact contract a buggy flush (clean bits before sync, the fsyncgate
// pattern) breaks.
var ErrAppliedNotDurable = errors.New("crashtest: applied but not durable")

// Instance is one open store under test.
type Instance interface {
	// Commit applies numbered operation op and makes it durable. A nil
	// return acknowledges durability. Wrap ErrAppliedNotDurable when the
	// mutation applied but the barrier failed and a retried Flush could
	// still make it durable.
	Commit(op int) error
	// Visible returns the set of fully-visible committed operations. It
	// must return an error if it observes a partially-applied operation,
	// a wrong value, or storage-level corruption — never report damaged
	// state as healthy.
	Visible() (map[int]bool, error)
	// Close releases the instance; errors after a simulated crash are
	// expected and ignored by the harness.
	Close() error
}

// Flusher is optionally implemented by instances whose durability barrier
// can be retried on its own (without re-applying mutations).
type Flusher interface {
	Flush() error
}

// Config describes one store and the fault schedule to enumerate.
type Config struct {
	// Open opens (or reopens after a crash) the store over fs.
	Open func(fs *vfs.FaultFS) (Instance, error)
	// Ops is the workload length.
	Ops int
	// TornWrites also enumerates torn variants of every write op (a
	// prefix reaches the platter, then power dies). Only sound for
	// stores whose on-disk format tolerates torn writes everywhere
	// (log-structured); overwrite-in-place page stores protect torn
	// pages by checksum detection, not recovery, and should leave this
	// off (see DESIGN.md, durability contract).
	TornWrites bool
	// SyncFaults also enumerates a failed fsync (single and sticky) at
	// every sync op, with post-fsyncgate drop semantics.
	SyncFaults bool
	// ReadFaults also enumerates a corrupted read at every read the
	// recovery and verification path performs: recovery must either
	// detect the damage or serve correct data, never wrong data.
	ReadFaults bool
	// DoubleFaults additionally crashes during each crash recovery
	// (power cut before every op recovery executes), then verifies the
	// second recovery. Recovery must be idempotent.
	DoubleFaults bool
}

// Violation is one broken recovery invariant.
type Violation struct {
	Fault  vfs.Fault // the scheduled fault
	Second vfs.Fault // for double-fault scenarios, the recovery-time fault
	Msg    string
}

func (v Violation) String() string {
	s := fmt.Sprintf("fault %+v", v.Fault)
	if v.Second.Kind != vfs.FaultNone {
		s += fmt.Sprintf(" then %+v", v.Second)
	}
	return s + ": " + v.Msg
}

// Report summarizes a harness run.
type Report struct {
	Scenarios  int
	Violations []Violation
}

// Run executes the full fault-schedule enumeration for cfg. The returned
// error reports harness/workload plumbing problems (the store failing
// without any fault injected); invariant breaks are collected in the
// report.
func Run(cfg Config) (*Report, error) {
	if cfg.Open == nil || cfg.Ops <= 0 {
		return nil, fmt.Errorf("crashtest: config needs Open and Ops")
	}

	// Probe run, no faults: learn the op stream and check the workload
	// itself is sound.
	probe := vfs.NewFaultFS()
	inst, err := cfg.Open(probe)
	if err != nil {
		return nil, fmt.Errorf("crashtest: probe open: %w", err)
	}
	for i := 0; i < cfg.Ops; i++ {
		if err := inst.Commit(i); err != nil {
			inst.Close()
			return nil, fmt.Errorf("crashtest: probe commit %d: %w", i, err)
		}
	}
	if err := inst.Close(); err != nil {
		return nil, fmt.Errorf("crashtest: probe close: %w", err)
	}
	opLog := probe.OpLog()
	preReads := probe.Reads()
	inst, err = cfg.Open(probe)
	if err != nil {
		return nil, fmt.Errorf("crashtest: probe reopen: %w", err)
	}
	vis, err := inst.Visible()
	if err != nil {
		inst.Close()
		return nil, fmt.Errorf("crashtest: probe visible: %w", err)
	}
	for i := 0; i < cfg.Ops; i++ {
		if !vis[i] {
			inst.Close()
			return nil, fmt.Errorf("crashtest: op %d missing after clean reopen", i)
		}
	}
	reopenReads := probe.Reads() - preReads
	inst.Close()

	var faults []vfs.Fault
	for c := 1; c <= len(opLog); c++ {
		faults = append(faults, vfs.Fault{Kind: vfs.PowerCut, Op: c})
	}
	if cfg.TornWrites {
		for c := 1; c <= len(opLog); c++ {
			if opLog[c-1] != 'w' {
				continue
			}
			for _, keep := range []int{1, vfs.KeepHalf, vfs.KeepAllButOne} {
				faults = append(faults, vfs.Fault{Kind: vfs.TornWrite, Op: c, Keep: keep})
			}
		}
	}
	if cfg.SyncFaults {
		for c := 1; c <= len(opLog); c++ {
			if opLog[c-1] != 's' {
				continue
			}
			faults = append(faults, vfs.Fault{Kind: vfs.FailSync, Op: c})
			faults = append(faults, vfs.Fault{Kind: vfs.FailSync, Op: c, Sticky: true})
		}
	}

	rep := &Report{}
	for _, f := range faults {
		runScenario(cfg, f, vfs.Fault{}, rep)
		if cfg.DoubleFaults && f.Kind == vfs.PowerCut {
			// Crash again at each point of the recovery itself; stop
			// once the secondary fault no longer fires (recovery used
			// fewer ops).
			for d := 1; ; d++ {
				second := vfs.Fault{Kind: vfs.PowerCut, Op: d}
				if !runScenario(cfg, f, second, rep) {
					break
				}
			}
		}
	}
	if cfg.ReadFaults {
		for r := 1; r <= reopenReads; r++ {
			runReadScenario(cfg, r, rep)
		}
	}
	return rep, nil
}

// runWorkload drives the workload over fs, returning the set of
// acknowledged operations.
func runWorkload(cfg Config, fs *vfs.FaultFS) map[int]bool {
	acked := map[int]bool{}
	inst, err := cfg.Open(fs)
	if err != nil {
		return acked
	}
	for i := 0; i < cfg.Ops; i++ {
		err := inst.Commit(i)
		if err == nil {
			acked[i] = true
			continue
		}
		// The mutation applied but the barrier failed: retry the
		// barrier alone, like an application retrying fsync. A lying
		// retry (success without durability) is exactly what the
		// enumeration afterwards exposes.
		if errors.Is(err, ErrAppliedNotDurable) {
			if fl, ok := inst.(Flusher); ok && fl.Flush() == nil {
				acked[i] = true
			}
		}
	}
	inst.Close()
	return acked
}

// runScenario executes one crash scenario; it reports whether the
// secondary fault (if any) fired.
func runScenario(cfg Config, fault, second vfs.Fault, rep *Report) bool {
	rep.Scenarios++
	fs := vfs.NewFaultFS()
	fs.SetFaults(fault)
	acked := runWorkload(cfg, fs)
	fs.Recover()

	secondFired := false
	if second.Kind != vfs.FaultNone {
		// Schedule the secondary fault relative to the ops recovery will
		// now execute.
		second.Op += fs.Ops()
		fs.SetFaults(second)
		if inst, err := cfg.Open(fs); err == nil {
			inst.Visible()
			inst.Close()
		}
		secondFired = fs.Triggered()
		fs.Recover()
	}

	fail := func(msg string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{Fault: fault, Second: second, Msg: fmt.Sprintf(msg, args...)})
	}

	inst, err := cfg.Open(fs)
	if err != nil {
		fail("reopen after crash failed: %v", err)
		return secondFired
	}
	defer inst.Close()
	vis, err := inst.Visible()
	if err != nil {
		fail("recovered state unreadable or partial: %v", err)
		return secondFired
	}
	for i := 0; i < cfg.Ops; i++ {
		if acked[i] && !vis[i] {
			fail("acknowledged op %d lost", i)
		}
	}
	for i := range vis {
		if i < 0 || i >= cfg.Ops {
			fail("phantom op %d visible", i)
		}
	}
	// Liveness: the recovered store takes and keeps a fresh commit.
	extra := cfg.Ops // one op id past the workload
	if err := inst.Commit(extra); err != nil {
		fail("recovered store rejected new commit: %v", err)
		return secondFired
	}
	vis2, err := inst.Visible()
	if err != nil {
		fail("visible after post-recovery commit: %v", err)
		return secondFired
	}
	if !vis2[extra] {
		fail("post-recovery commit not visible")
	}
	return secondFired
}

// runReadScenario runs a clean workload, then corrupts the r-th read of
// the recovery+verification path. The store must either detect the damage
// (any error) or serve correct data; silently wrong data is a violation
// (Visible is required to validate content).
func runReadScenario(cfg Config, r int, rep *Report) {
	rep.Scenarios++
	fault := vfs.Fault{Kind: vfs.CorruptRead}
	fs := vfs.NewFaultFS()
	runWorkload(cfg, fs)
	fault.Op = fs.Reads() + r
	fs.SetFaults(fault)

	inst, err := cfg.Open(fs)
	if err != nil {
		return // detected: open refused the corrupt read
	}
	defer inst.Close()
	vis, err := inst.Visible()
	if err != nil {
		return // detected: verification surfaced an error
	}
	// Undetected: then the data served must be correct. A missing tail
	// record is tolerated only for reads the recovery path itself
	// consumed (a corrupt final WAL frame is indistinguishable from a
	// torn tail); anything else visible must be exact, which Visible
	// has already validated, and no phantom ops may appear.
	for i := range vis {
		if i < 0 || i >= cfg.Ops {
			rep.Violations = append(rep.Violations, Violation{Fault: fault, Msg: fmt.Sprintf("phantom op %d visible under read corruption", i)})
		}
	}
}
