package crashtest

import (
	"strings"
	"testing"

	"gdbm/internal/storage/vfs"
)

func requireClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Scenarios == 0 {
		t.Fatal("harness enumerated no scenarios")
	}
	for i, v := range rep.Violations {
		if i == 5 {
			t.Errorf("... and %d more", len(rep.Violations)-5)
			break
		}
		t.Errorf("violation: %s", v)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("%d violations over %d scenarios", len(rep.Violations), rep.Scenarios)
	}
	t.Logf("%d scenarios, no violations", rep.Scenarios)
}

// TestDurableKVFullMatrix runs the WAL+tx+btree+pager reference store
// through the complete fault matrix: a crash before every durability op,
// torn variants of every write, failed and sticky-failed fsyncs with
// fsyncgate drop semantics, corruption of every recovery-path read, and a
// second crash at every point of every recovery. Zero violations is the
// durability contract of the storage stack.
func TestDurableKVFullMatrix(t *testing.T) {
	rep, err := Run(Config{
		Open:         func(fs *vfs.FaultFS) (Instance, error) { return OpenDurableKV(fs) },
		Ops:          5,
		TornWrites:   true,
		SyncFaults:   true,
		ReadFaults:   true,
		DoubleFaults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, rep)
}

// TestPageStoreCutsAndSyncFaults runs the overwrite-in-place store (no
// log, durability = pager.Flush) under power cuts, fsync failures and
// read corruption. Torn page writes are deliberately excluded: a store
// that rewrites pages in place detects torn pages by checksum but cannot
// repair them (see DESIGN.md).
func TestPageStoreCutsAndSyncFaults(t *testing.T) {
	rep, err := Run(Config{
		Open:         func(fs *vfs.FaultFS) (Instance, error) { return OpenPageStore(fs) },
		Ops:          5,
		SyncFaults:   true,
		ReadFaults:   true,
		DoubleFaults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, rep)
}

// TestBuggyFlushCaught re-introduces the pager's historical flush bug in
// miniature — dirty slots marked clean before the sync barrier succeeds —
// and checks the harness convicts it on the sticky-sync path: the failed
// fsync drops the write, the retried flush has nothing left to write, the
// lying retried sync gets the op acknowledged, and the crash then loses
// it. The fixed twin of the same store must pass the same schedule.
func TestBuggyFlushCaught(t *testing.T) {
	buggy, err := Run(Config{Open: openMini(true), Ops: 4, SyncFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(buggy.Violations) == 0 {
		t.Fatal("harness failed to catch the early-clean flush bug")
	}
	lost := false
	for _, v := range buggy.Violations {
		if v.Fault.Kind != vfs.FailSync {
			t.Errorf("unexpected violation outside sync faults: %s", v)
		}
		if strings.Contains(v.Msg, "acknowledged op") {
			lost = true
		}
	}
	if !lost {
		t.Fatalf("expected an acknowledged-op-lost conviction, got: %v", buggy.Violations)
	}
	t.Logf("buggy flush convicted in %d of %d scenarios", len(buggy.Violations), buggy.Scenarios)

	fixed, err := Run(Config{Open: openMini(false), Ops: 4, SyncFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, fixed)
}

// TestConfigValidation pins the harness's plumbing errors.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should be rejected")
	}
}
