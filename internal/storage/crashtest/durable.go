package crashtest

import (
	"fmt"
	"strconv"
	"strings"

	"gdbm/internal/storage/btree"
	"gdbm/internal/storage/pager"
	"gdbm/internal/storage/tx"
	"gdbm/internal/storage/vfs"
	"gdbm/internal/storage/wal"
)

// DurableKV is the reference store for the full fault matrix: a B+tree
// working set whose durability comes entirely from the WAL. Every open
// wipes the page file and rebuilds the tree by replaying the log, so the
// page file is a disposable cache: torn page writes, dropped page syncs
// and half-flushed pools are all harmless by construction, and the only
// durability-critical bytes are the CRC-framed WAL records. Each commit
// is one WAL record that expands to two B+tree keys, making partial
// application of a record detectable.
//
// This is the layering the survey's transactional engines assume (redo
// log in front of backend storage); DurableKV exists so the crash harness
// has a store that must survive the matrix with zero violations.
type DurableKV struct {
	log  *wal.Log
	mgr  *tx.Manager
	pg   *pager.Pager
	tree *btree.Tree
}

const (
	durableWAL  = "durable.wal"
	durablePage = "durable.pg"
)

// OpenDurableKV opens the store on fsys, recovering from the WAL.
func OpenDurableKV(fsys vfs.FS) (*DurableKV, error) {
	// The page file is cache, not truth: wipe it so recovery state can
	// never depend on what a crash left there.
	raw, err := fsys.OpenFile(durablePage)
	if err != nil {
		return nil, err
	}
	if err := raw.Truncate(0); err != nil {
		raw.Close()
		return nil, err
	}
	if err := raw.Close(); err != nil {
		return nil, err
	}
	log, err := wal.OpenFS(fsys, durableWAL)
	if err != nil {
		return nil, err
	}
	pg, err := pager.Open(durablePage, pager.Options{PoolPages: 2, FS: fsys})
	if err != nil {
		log.Close()
		return nil, err
	}
	tree, _, err := btree.Create(pg)
	if err != nil {
		pg.Close()
		log.Close()
		return nil, err
	}
	d := &DurableKV{log: log, mgr: tx.NewManager(log), pg: pg, tree: tree}
	if err := log.Replay(func(payload []byte) error {
		op, err := decodeDurableRec(payload)
		if err != nil {
			return err
		}
		return d.applyOp(op)
	}); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

func encodeDurableRec(op int) []byte { return []byte(fmt.Sprintf("op:%d", op)) }

func decodeDurableRec(payload []byte) (int, error) {
	s, ok := strings.CutPrefix(string(payload), "op:")
	if !ok {
		return 0, fmt.Errorf("durablekv: malformed record %q", payload)
	}
	return strconv.Atoi(s)
}

func durableKey(prefix string, op int) []byte {
	return []byte(fmt.Sprintf("%s/%08d", prefix, op))
}

func durableVal(op int) string { return fmt.Sprintf("val-%d", op) }

func (d *DurableKV) applyOp(op int) error {
	if err := d.tree.Put(durableKey("k", op), []byte(durableVal(op))); err != nil {
		return err
	}
	return d.tree.Put(durableKey("c", op), []byte(durableVal(op)))
}

// Commit implements Instance: the op is durable once its WAL record is
// synced; the tree mutation runs as the commit hook.
func (d *DurableKV) Commit(op int) error {
	return d.mgr.Update(func(tr *tx.Tx) error {
		if err := tr.Record(encodeDurableRec(op)); err != nil {
			return err
		}
		return tr.OnCommit(func() error { return d.applyOp(op) })
	})
}

// Visible implements Instance: it validates both keys and the value of
// every op it reports, and errors on a half-applied record. The tree is
// scanned once per prefix and cross-checked afterwards (the tree lock is
// not reentrant, so the callbacks must not issue Gets).
func (d *DurableKV) Visible() (map[int]bool, error) {
	scan := func(prefix string) (map[int]bool, error) {
		got := map[int]bool{}
		var inner error
		err := d.tree.AscendPrefix([]byte(prefix+"/"), func(k, v []byte) bool {
			op, err := strconv.Atoi(strings.TrimPrefix(string(k), prefix+"/"))
			if err != nil {
				inner = fmt.Errorf("durablekv: malformed key %q", k)
				return false
			}
			if string(v) != durableVal(op) {
				inner = fmt.Errorf("durablekv: op %d has wrong value %q", op, v)
				return false
			}
			got[op] = true
			return true
		})
		if err != nil {
			return nil, err
		}
		return got, inner
	}
	vis, err := scan("k")
	if err != nil {
		return nil, err
	}
	second, err := scan("c")
	if err != nil {
		return nil, err
	}
	for op := range vis {
		if !second[op] {
			return nil, fmt.Errorf("durablekv: op %d partially applied (second key missing)", op)
		}
	}
	for op := range second {
		if !vis[op] {
			return nil, fmt.Errorf("durablekv: op %d partially applied (first key missing)", op)
		}
	}
	return vis, nil
}

// Close implements Instance.
func (d *DurableKV) Close() error {
	err := d.log.Close()
	if cerr := d.pg.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ Instance = (*DurableKV)(nil)
