package crashtest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"gdbm/internal/storage/pager"
	"gdbm/internal/storage/vfs"
)

// PageStore is the overwrite-in-place reference store: one page per op,
// durability from pager.Flush. It has no log, so its ack point is a
// successful flush, and a flush that fails is retried through Flusher —
// the path that depends on the pager keeping dirty bits (and evicted-page
// payloads) until a sync actually succeeds. It is sound under power cuts
// and fsync failures but not under torn page writes, which an
// overwrite-in-place store can only detect (by checksum), not repair; run
// it without Config.TornWrites (see DESIGN.md, durability contract).
type PageStore struct {
	pg *pager.Pager
}

// OpenPageStore opens the store on fsys with a deliberately tiny pool so
// dirty pages get evicted between flushes.
func OpenPageStore(fsys vfs.FS) (*PageStore, error) {
	pg, err := pager.Open("store.pg", pager.Options{PoolPages: 2, FS: fsys})
	if err != nil {
		return nil, err
	}
	return &PageStore{pg: pg}, nil
}

// pagePayload is the full-page image for op: a decodable header plus a
// deterministic fill, so Visible can validate every byte.
func pagePayload(op int) []byte {
	buf := make([]byte, pager.PayloadSize)
	for i := range buf {
		buf[i] = byte('a' + op%26)
	}
	copy(buf, fmt.Sprintf("crash-op:%d;", op))
	return buf
}

// Commit implements Instance. Op i lives in page i+1 (page 0 is the pager
// meta page); pages for ops lost in a crash are re-allocated zeroed and
// stay invisible.
func (s *PageStore) Commit(op int) error {
	for s.pg.Pages() < op+2 {
		if _, err := s.pg.Allocate(); err != nil {
			return err
		}
	}
	if err := s.pg.Write(pager.PageID(op+1), pagePayload(op)); err != nil {
		return err
	}
	if err := s.pg.Flush(); err != nil {
		return fmt.Errorf("%w: %v", ErrAppliedNotDurable, err)
	}
	return nil
}

// Flush implements Flusher: the retryable durability barrier.
func (s *PageStore) Flush() error { return s.pg.Flush() }

// Visible implements Instance. All-zero pages are gaps (allocated but
// never committed); anything else must be an exact op image.
func (s *PageStore) Visible() (map[int]bool, error) {
	vis := map[int]bool{}
	zero := make([]byte, pager.PayloadSize)
	for i := 1; i < s.pg.Pages(); i++ {
		data, err := s.pg.Read(pager.PageID(i))
		if err != nil {
			return nil, err
		}
		if bytes.Equal(data, zero) {
			continue
		}
		op := i - 1
		if !bytes.Equal(data, pagePayload(op)) {
			return nil, fmt.Errorf("pagestore: page %d holds damaged op image", i)
		}
		vis[op] = true
	}
	return vis, nil
}

// Close implements Instance.
func (s *PageStore) Close() error { return s.pg.Close() }

var (
	_ Instance = (*PageStore)(nil)
	_ Flusher  = (*PageStore)(nil)
)

// miniStore is a minimal slotted page-file store used to demonstrate that
// the harness catches the classic flush bug: marking pages clean before
// the sync barrier succeeds. With buggy=true its flush clears the dirty
// set before calling Sync, so a flush retried after a failed fsync writes
// nothing, the (post-fsyncgate) retried sync reports success, and the op
// is acknowledged without ever reaching disk — exactly the bug the pager's
// flushLocked had to avoid. With buggy=false the dirty set is cleared only
// after Sync returns nil and the retry rewrites every dropped slot.
type miniStore struct {
	f     vfs.File
	dirty map[int][]byte
	buggy bool
}

const miniSlot = 64

func openMini(buggy bool) func(fs *vfs.FaultFS) (Instance, error) {
	return func(fs *vfs.FaultFS) (Instance, error) {
		f, err := fs.OpenFile("mini.db")
		if err != nil {
			return nil, err
		}
		return &miniStore{f: f, dirty: map[int][]byte{}, buggy: buggy}, nil
	}
}

// miniRecord frames op as: crc32(rest) | op | label, zero-padded to the
// slot size.
func miniRecord(op int) []byte {
	rec := make([]byte, miniSlot)
	binary.BigEndian.PutUint32(rec[4:8], uint32(op))
	copy(rec[8:], fmt.Sprintf("mini-op:%d", op))
	binary.BigEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[4:]))
	return rec
}

func (s *miniStore) Commit(op int) error {
	s.dirty[op] = miniRecord(op)
	if err := s.Flush(); err != nil {
		return fmt.Errorf("%w: %v", ErrAppliedNotDurable, err)
	}
	return nil
}

func (s *miniStore) Flush() error {
	slots := make([]int, 0, len(s.dirty))
	for op := range s.dirty {
		slots = append(slots, op)
	}
	sort.Ints(slots)
	for _, op := range slots {
		if _, err := s.f.WriteAt(s.dirty[op], int64(op)*miniSlot); err != nil {
			return err
		}
	}
	if s.buggy {
		// The bug under test: slots marked clean before the barrier.
		s.dirty = map[int][]byte{}
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = map[int][]byte{}
	return nil
}

func (s *miniStore) Visible() (map[int]bool, error) {
	size, err := s.f.Size()
	if err != nil {
		return nil, err
	}
	vis := map[int]bool{}
	rec := make([]byte, miniSlot)
	for off := int64(0); off+miniSlot <= size; off += miniSlot {
		if _, err := s.f.ReadAt(rec, off); err != nil {
			return nil, err
		}
		if binary.BigEndian.Uint32(rec[0:4]) != crc32.ChecksumIEEE(rec[4:]) {
			continue // never durably written (or torn): an invisible slot
		}
		op := int(binary.BigEndian.Uint32(rec[4:8]))
		if int64(op)*miniSlot != off {
			return nil, fmt.Errorf("ministore: op %d found in wrong slot", op)
		}
		vis[op] = true
	}
	return vis, nil
}

func (s *miniStore) Close() error { return s.f.Close() }

var (
	_ Instance = (*miniStore)(nil)
	_ Flusher  = (*miniStore)(nil)
)
