// Package kv defines the ordered key/value store interface shared by the
// backend-storage engines (Table I's "Backend Storage" column) and provides
// two implementations: an in-memory sorted store and a disk store backed by
// the on-disk B+tree.
package kv

import (
	"bytes"
	"sort"
	"sync"

	"gdbm/internal/cache"
	"gdbm/internal/obs"
	"gdbm/internal/storage/btree"
	"gdbm/internal/storage/pager"
	"gdbm/internal/storage/vfs"
)

// Store is an ordered byte-key/byte-value map.
type Store interface {
	// Get returns the value for key; ok is false if absent.
	Get(key []byte) (val []byte, ok bool, err error)
	// Put inserts or replaces key.
	Put(key, val []byte) error
	// Delete removes key, reporting whether it existed.
	Delete(key []byte) (bool, error)
	// Scan calls fn for each key with the given prefix in ascending order
	// until fn returns false.
	Scan(prefix []byte, fn func(key, val []byte) bool) error
	// Len returns the number of stored keys.
	Len() int
	// Close releases resources.
	Close() error
}

// Memory is an in-memory Store kept in sorted order. It is safe for
// concurrent use.
type Memory struct {
	mu   sync.RWMutex
	keys [][]byte
	vals [][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

func (m *Memory) find(key []byte) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return bytes.Compare(m.keys[i], key) >= 0 })
	if i < len(m.keys) && bytes.Equal(m.keys[i], key) {
		return i, true
	}
	return i, false
}

// Get implements Store.
func (m *Memory) Get(key []byte) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i, ok := m.find(key); ok {
		return append([]byte(nil), m.vals[i]...), true, nil
	}
	return nil, false, nil
}

// Put implements Store.
func (m *Memory) Put(key, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.find(key)
	v := append([]byte(nil), val...)
	if ok {
		m.vals[i] = v
		return nil
	}
	k := append([]byte(nil), key...)
	m.keys = append(m.keys, nil)
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = k
	m.vals = append(m.vals, nil)
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = v
	return nil
}

// Delete implements Store.
func (m *Memory) Delete(key []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.find(key)
	if !ok {
		return false, nil
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	return true, nil
}

// Scan implements Store.
func (m *Memory) Scan(prefix []byte, fn func(key, val []byte) bool) error {
	m.mu.RLock()
	type kv struct{ k, v []byte }
	var snap []kv
	i := sort.Search(len(m.keys), func(i int) bool { return bytes.Compare(m.keys[i], prefix) >= 0 })
	for ; i < len(m.keys) && bytes.HasPrefix(m.keys[i], prefix); i++ {
		snap = append(snap, kv{append([]byte(nil), m.keys[i]...), append([]byte(nil), m.vals[i]...)})
	}
	m.mu.RUnlock()
	for _, e := range snap {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.keys)
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Disk is a Store backed by the on-disk B+tree.
type Disk struct {
	pg   *pager.Pager
	tree *btree.Tree
	// Header is the B+tree header page; persist it to reopen the store.
	Header pager.PageID
	owns   bool
}

// DiskOptions configures OpenDiskWith.
type DiskOptions struct {
	// PoolPages bounds the pager's buffer pool in pages (zero = default).
	PoolPages int
	// CacheBytes bounds the buffer pool in bytes; when positive it
	// overrides PoolPages (see pager.Options.CacheBytes).
	CacheBytes int64
	// FS is the filesystem the page file lives on; nil means the real one.
	FS vfs.FS
	// Metrics, when non-nil, receives the pager's I/O counters (see
	// pager.Options.Metrics).
	Metrics *obs.Registry
}

// OpenDisk opens (or creates) a disk store in its own page file at path on
// the real filesystem.
func OpenDisk(path string, poolPages int) (*Disk, error) {
	return OpenDiskFS(nil, path, poolPages)
}

// OpenDiskFS is OpenDisk over an explicit filesystem (nil means the real
// one); crash tests pass a vfs.FaultFS.
func OpenDiskFS(fsys vfs.FS, path string, poolPages int) (*Disk, error) {
	return OpenDiskWith(path, DiskOptions{PoolPages: poolPages, FS: fsys})
}

// OpenDiskWith is OpenDiskFS with the full option set.
func OpenDiskWith(path string, o DiskOptions) (*Disk, error) {
	pg, err := pager.Open(path, pager.Options{PoolPages: o.PoolPages, CacheBytes: o.CacheBytes, FS: o.FS, Metrics: o.Metrics})
	if err != nil {
		return nil, err
	}
	var t *btree.Tree
	var header pager.PageID
	if pg.Pages() <= 1 {
		t, header, err = btree.Create(pg)
	} else {
		// By construction the first tree created in a fresh file has
		// header page 1.
		header = 1
		t, err = btree.Load(pg, header)
	}
	if err != nil {
		pg.Close()
		return nil, err
	}
	return &Disk{pg: pg, tree: t, Header: header, owns: true}, nil
}

// NewDisk wraps an existing tree in a shared pager. Close does not close the
// pager.
func NewDisk(pg *pager.Pager, tree *btree.Tree, header pager.PageID) *Disk {
	return &Disk{pg: pg, tree: tree, Header: header}
}

// Get implements Store.
func (d *Disk) Get(key []byte) ([]byte, bool, error) { return d.tree.Get(key) }

// Put implements Store.
func (d *Disk) Put(key, val []byte) error { return d.tree.Put(key, val) }

// Delete implements Store.
func (d *Disk) Delete(key []byte) (bool, error) { return d.tree.Delete(key) }

// Scan implements Store.
func (d *Disk) Scan(prefix []byte, fn func(key, val []byte) bool) error {
	return d.tree.AscendPrefix(prefix, fn)
}

// Len implements Store.
func (d *Disk) Len() int { return d.tree.Len() }

// Flush persists buffered pages.
func (d *Disk) Flush() error { return d.pg.Flush() }

// CacheStats returns the underlying pager's buffer-pool counters.
func (d *Disk) CacheStats() cache.Stats { return d.pg.CacheStats() }

// Close implements Store.
func (d *Disk) Close() error {
	if d.owns {
		return d.pg.Close()
	}
	return d.pg.Flush()
}

var (
	_ Store = (*Memory)(nil)
	_ Store = (*Disk)(nil)
)
