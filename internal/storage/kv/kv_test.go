package kv

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(filepath.Join(t.TempDir(), "kv.pg"), 32)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]Store{
		"memory": NewMemory(),
		"disk":   disk,
	}
}

func TestStoreBasics(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put([]byte("b"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get([]byte("a"))
			if err != nil || !ok || string(v) != "1" {
				t.Fatalf("Get a = %q %v %v", v, ok, err)
			}
			if _, ok, _ := s.Get([]byte("zzz")); ok {
				t.Error("missing key found")
			}
			if s.Len() != 2 {
				t.Errorf("len = %d", s.Len())
			}
			// Replace.
			s.Put([]byte("a"), []byte("9"))
			v, _, _ = s.Get([]byte("a"))
			if string(v) != "9" {
				t.Errorf("after replace: %q", v)
			}
			if s.Len() != 2 {
				t.Errorf("len after replace = %d", s.Len())
			}
			// Delete.
			ok, err = s.Delete([]byte("a"))
			if err != nil || !ok {
				t.Fatalf("Delete = %v %v", ok, err)
			}
			if ok, _ := s.Delete([]byte("a")); ok {
				t.Error("double delete reported true")
			}
			if s.Len() != 1 {
				t.Errorf("len after delete = %d", s.Len())
			}
		})
	}
}

func TestStoreScan(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 20; i++ {
				s.Put([]byte(fmt.Sprintf("p/%02d", i)), []byte{byte(i)})
				s.Put([]byte(fmt.Sprintf("q/%02d", i)), []byte{byte(i)})
			}
			var keys []string
			s.Scan([]byte("p/"), func(k, v []byte) bool {
				keys = append(keys, string(k))
				return true
			})
			if len(keys) != 20 {
				t.Fatalf("scan found %d keys", len(keys))
			}
			for i, k := range keys {
				if k != fmt.Sprintf("p/%02d", i) {
					t.Errorf("keys[%d] = %s", i, k)
				}
			}
			// Early stop.
			n := 0
			s.Scan([]byte("p/"), func(k, v []byte) bool { n++; return n < 3 })
			if n != 3 {
				t.Errorf("early stop visited %d", n)
			}
			// Empty prefix scans everything.
			n = 0
			s.Scan(nil, func(k, v []byte) bool { n++; return true })
			if n != 40 {
				t.Errorf("full scan visited %d", n)
			}
		})
	}
}

func TestDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.pg")
	d, err := OpenDisk(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Put([]byte("key"), []byte("value"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	v, ok, err := d2.Get([]byte("key"))
	if err != nil || !ok || string(v) != "value" {
		t.Fatalf("after reopen: %q %v %v", v, ok, err)
	}
}

// Property: memory and disk stores agree on any operation sequence.
func TestMemoryDiskEquivalenceQuick(t *testing.T) {
	type op struct {
		Key byte
		Val byte
		Del bool
	}
	f := func(ops []op) bool {
		mem := NewMemory()
		disk, err := OpenDisk(filepath.Join(t.TempDir(), "eq.pg"), 16)
		if err != nil {
			return false
		}
		defer disk.Close()
		for _, o := range ops {
			k := []byte{o.Key}
			if o.Del {
				mok, _ := mem.Delete(k)
				dok, _ := disk.Delete(k)
				if mok != dok {
					return false
				}
			} else {
				mem.Put(k, []byte{o.Val})
				disk.Put(k, []byte{o.Val})
			}
		}
		if mem.Len() != disk.Len() {
			return false
		}
		equal := true
		mem.Scan(nil, func(k, v []byte) bool {
			dv, ok, _ := disk.Get(k)
			if !ok || string(dv) != string(v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
