package pager

import (
	"bytes"
	"errors"
	"testing"

	"gdbm/internal/storage/vfs"
)

func payload(fill byte) []byte {
	return bytes.Repeat([]byte{fill}, PayloadSize)
}

// TestFlushRetryAfterFailedSync pins the flushLocked contract: dirty bits
// are cleared only after a successful sync, so a Flush retried after a
// failed fsync rewrites the pages the kernel may have dropped.
func TestFlushRetryAfterFailedSync(t *testing.T) {
	fs := vfs.NewFaultFS()
	p, err := Open("p.pg", Options{PoolPages: 8, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(id, payload('A')); err != nil {
		t.Fatal(err)
	}
	// Fail the next sync (the one Flush issues): fsyncgate semantics
	// silently drop the written-but-unsynced bytes.
	fs.SetFaults(vfs.Fault{Kind: vfs.FailSync, Op: fs.Ops() + 3}) // meta write, page write, sync
	if err := p.Flush(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("first flush = %v", err)
	}
	if !p.SyncFailed() {
		t.Fatal("SyncFailed not sticky after failed sync")
	}
	// Retried Flush must rewrite and re-sync.
	if err := p.Flush(); err != nil {
		t.Fatalf("retried flush = %v", err)
	}
	if p.SyncFailed() {
		t.Fatal("SyncFailed still set after successful flush")
	}
	// Power cut: only what the successful sync persisted survives.
	fs.Recover()
	p2, err := Open("p.pg", Options{PoolPages: 8, FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := p2.Read(id)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if !bytes.Equal(got, payload('A')) {
		t.Fatal("retried flush did not rewrite the dropped page")
	}
}

// TestFlushRetryRewritesEvictedPages: a dirty page evicted from the pool
// between syncs must survive a failed-then-retried Flush even though its
// frame is gone.
func TestFlushRetryRewritesEvictedPages(t *testing.T) {
	fs := vfs.NewFaultFS()
	p, err := Open("p.pg", Options{PoolPages: 1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(a, payload('A')); err != nil {
		t.Fatal(err)
	}
	// Allocating and writing a second page evicts page a (pool size 1).
	b, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(b, payload('B')); err != nil {
		t.Fatal(err)
	}
	// Fail every sync until recovery, then let the retry succeed.
	ops := fs.Ops()
	fs.SetFaults(vfs.Fault{Kind: vfs.FailSync, Op: ops + 4}) // meta, evicted a, pooled b, then sync
	if err := p.Flush(); err == nil {
		t.Fatal("flush should fail")
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("retried flush = %v", err)
	}
	fs.Recover()
	p2, err := Open("p.pg", Options{PoolPages: 4, FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for id, fill := range map[PageID]byte{a: 'A', b: 'B'} {
		got, err := p2.Read(id)
		if err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		if !bytes.Equal(got, payload(fill)) {
			t.Fatalf("page %d lost after evict + failed sync + retry", id)
		}
	}
}

// TestReadCorruptionNeverServed: bit flips on the read path must surface
// as ErrChecksum, never as silently wrong payloads.
func TestReadCorruptionNeverServed(t *testing.T) {
	fs := vfs.NewFaultFS()
	p, err := Open("p.pg", Options{PoolPages: 2, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(id, payload(byte('A'+i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Count the reads a clean reopen+scan performs, then corrupt each in
	// turn. Pool size 1 forces every Read to hit the file.
	startReads := fs.Reads()
	reopenScan := func() (map[PageID][]byte, error) {
		p, err := Open("p.pg", Options{PoolPages: 1, FS: fs})
		if err != nil {
			return nil, err
		}
		defer p.Close()
		out := map[PageID][]byte{}
		for _, id := range ids {
			d, err := p.Read(id)
			if err != nil {
				return nil, err
			}
			out[id] = d
		}
		return out, nil
	}
	if _, err := reopenScan(); err != nil {
		t.Fatal(err)
	}
	total := fs.Reads() - startReads

	for r := 1; r <= total; r++ {
		fs.SetFaults(vfs.Fault{Kind: vfs.CorruptRead, Op: fs.Reads() + r})
		got, err := reopenScan()
		if err != nil {
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("read %d: unexpected error kind %v", r, err)
			}
			continue
		}
		for i, id := range ids {
			if !bytes.Equal(got[id], payload(byte('A'+i))) {
				t.Fatalf("read %d: corrupt page %d served without error", r, id)
			}
		}
	}
}
