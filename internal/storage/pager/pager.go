// Package pager implements a slotted page file with an LRU buffer pool. It is
// the "external memory" storage layer of Table I: engines that advertise
// external-memory support keep their primary data in page files managed here.
//
// The file is an array of fixed-size pages. Page 0 is reserved for the
// pager's own metadata (page count and free list head). Every page carries a
// CRC32 checksum validated on read, so torn or corrupted pages surface as
// errors instead of silent damage.
//
// The buffer pool is a fixed-budget page cache with CLOCK (second-chance)
// replacement: Options.CacheBytes bounds it in bytes (Options.PoolPages in
// pages, for callers that think in frames). Victim selection is the
// cache.Ring policy; write-back of dirty victims and their retention across
// failed syncs stay here, under the pager's lock.
//
// Durability contract: Flush returns nil only after every buffered write has
// been written AND fsynced. Dirty bits are cleared only once the sync
// succeeds, and dirty pages evicted between syncs are retained in a side
// ledger, so a Flush retried after a failed sync rewrites everything the
// kernel may have dropped (the post-fsyncgate contract). All file access
// goes through vfs.File so crash tests can inject failures.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"gdbm/internal/cache"
	"gdbm/internal/obs"
	"gdbm/internal/storage/vfs"
)

// PageSize is the on-disk page size in bytes.
const PageSize = 4096

// headerSize is the per-page overhead: a CRC32 over the payload.
const headerSize = 4

// PayloadSize is the number of usable bytes per page.
const PayloadSize = PageSize - headerSize

// PageID identifies a page within a file. Page 0 is the pager's metadata.
type PageID uint32

// ErrChecksum reports a page whose stored CRC does not match its contents.
var ErrChecksum = fmt.Errorf("pager: page checksum mismatch")

type frame struct {
	id    PageID
	data  []byte // PayloadSize bytes
	dirty bool
}

// Pager manages a page file with a fixed-capacity write-back buffer pool.
type Pager struct {
	mu       sync.Mutex
	f        vfs.File
	capacity int
	frames   map[PageID]*frame
	policy   *cache.Ring[PageID] // CLOCK victim selection over frames
	pages    uint32              // total pages in file, including page 0
	freeHead PageID              // head of the free page list, 0 if none
	closed   bool

	// pendingEvict holds payloads of dirty frames evicted since the last
	// successful sync. They were written to the file, but until a sync
	// succeeds the kernel may drop them; a retried Flush must be able to
	// rewrite them even though the frames left the pool.
	pendingEvict map[PageID][]byte
	// syncFailed records that the last sync attempt failed (sticky until
	// a sync succeeds); Flush keeps rewriting everything unsynced.
	syncFailed bool

	// Stats for the buffer-pool ablation benchmark.
	hits      uint64
	misses    uint64
	evictions uint64

	// Instance-wide observability counters (nil-safe no-ops when the
	// pager was opened without a registry).
	mReads, mWrites, mSyncs, mSyncFailures *obs.Counter
}

// Options configures Open.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero means 256.
	PoolPages int
	// CacheBytes is the buffer pool budget in bytes; when positive it
	// overrides PoolPages with CacheBytes/PageSize frames (minimum 1).
	CacheBytes int64
	// FS is the filesystem to open the page file on. Nil means the real
	// filesystem.
	FS vfs.FS
	// Metrics, when non-nil, receives the pager's I/O counters:
	// pager.page_reads, pager.page_writes, pager.syncs,
	// pager.sync_failures.
	Metrics *obs.Registry
}

// Open opens or creates a page file.
func Open(path string, opts Options) (*Pager, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	if opts.CacheBytes > 0 {
		opts.PoolPages = int(opts.CacheBytes / PageSize)
		if opts.PoolPages < 1 {
			opts.PoolPages = 1
		}
	}
	if opts.FS == nil {
		opts.FS = vfs.OS()
	}
	f, err := opts.FS.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	p := &Pager{
		f:            f,
		capacity:     opts.PoolPages,
		frames:       make(map[PageID]*frame, opts.PoolPages),
		policy:       cache.NewRing[PageID](),
		pendingEvict: map[PageID][]byte{},
		// A nil registry yields nil counters, whose methods no-op.
		mReads:        opts.Metrics.Counter("pager.page_reads"),
		mWrites:       opts.Metrics.Counter("pager.page_writes"),
		mSyncs:        opts.Metrics.Counter("pager.syncs"),
		mSyncFailures: opts.Metrics.Counter("pager.sync_failures"),
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: size: %w", err)
	}
	if size == 0 {
		// Fresh file: create the metadata page.
		p.pages = 1
		if err := p.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		if size%PageSize != 0 {
			f.Close()
			return nil, fmt.Errorf("pager: %s has size %d, not a multiple of %d", path, size, PageSize)
		}
		p.pages = uint32(size / PageSize)
		if err := p.readMeta(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return p, nil
}

func (p *Pager) writeMeta() error {
	buf := make([]byte, PayloadSize)
	binary.BigEndian.PutUint32(buf[0:4], p.pages)
	binary.BigEndian.PutUint32(buf[4:8], uint32(p.freeHead))
	return p.writeRaw(0, buf)
}

func (p *Pager) readMeta() error {
	buf, err := p.readRaw(0)
	if err != nil {
		return err
	}
	p.pages = binary.BigEndian.Uint32(buf[0:4])
	p.freeHead = PageID(binary.BigEndian.Uint32(buf[4:8]))
	return nil
}

func (p *Pager) writeRaw(id PageID, payload []byte) error {
	if len(payload) != PayloadSize {
		return fmt.Errorf("pager: payload must be %d bytes, got %d", PayloadSize, len(payload))
	}
	var page [PageSize]byte
	copy(page[headerSize:], payload)
	binary.BigEndian.PutUint32(page[0:headerSize], crc32.ChecksumIEEE(page[headerSize:]))
	if _, err := p.f.WriteAt(page[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	p.mWrites.Inc()
	return nil
}

func (p *Pager) readRaw(id PageID) ([]byte, error) {
	var page [PageSize]byte
	if _, err := p.f.ReadAt(page[:], int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.mReads.Inc()
	want := binary.BigEndian.Uint32(page[0:headerSize])
	if crc32.ChecksumIEEE(page[headerSize:]) != want {
		return nil, fmt.Errorf("page %d: %w", id, ErrChecksum)
	}
	out := make([]byte, PayloadSize)
	copy(out, page[headerSize:])
	return out, nil
}

// Allocate returns a fresh page, reusing a freed page if available. The page
// contents start zeroed.
func (p *Pager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, fmt.Errorf("pager: allocate: file closed")
	}
	if p.freeHead != 0 {
		id := p.freeHead
		data, err := p.loadLocked(id)
		if err != nil {
			return 0, err
		}
		p.freeHead = PageID(binary.BigEndian.Uint32(data[0:4]))
		zero := make([]byte, PayloadSize)
		if err := p.storeLocked(id, zero); err != nil {
			return 0, err
		}
		return id, p.writeMeta()
	}
	id := PageID(p.pages)
	p.pages++
	zero := make([]byte, PayloadSize)
	if err := p.storeLocked(id, zero); err != nil {
		return 0, err
	}
	return id, p.writeMeta()
}

// Free returns a page to the free list.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || uint32(id) >= p.pages {
		return fmt.Errorf("pager: free invalid page %d", id)
	}
	buf := make([]byte, PayloadSize)
	binary.BigEndian.PutUint32(buf[0:4], uint32(p.freeHead))
	if err := p.storeLocked(id, buf); err != nil {
		return err
	}
	p.freeHead = id
	return p.writeMeta()
}

// Read returns a copy of the page payload.
func (p *Pager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pager: read: file closed")
	}
	data, err := p.loadLocked(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PayloadSize)
	copy(out, data)
	return out, nil
}

// Write replaces the page payload. Shorter payloads are zero-padded.
func (p *Pager) Write(id PageID, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("pager: write: file closed")
	}
	if len(payload) > PayloadSize {
		return fmt.Errorf("pager: payload %d exceeds %d", len(payload), PayloadSize)
	}
	if uint32(id) >= p.pages {
		return fmt.Errorf("pager: write to unallocated page %d", id)
	}
	buf := make([]byte, PayloadSize)
	copy(buf, payload)
	return p.storeLocked(id, buf)
}

// loadLocked fetches a page through the pool.
func (p *Pager) loadLocked(id PageID) ([]byte, error) {
	if fr, ok := p.frames[id]; ok {
		p.hits++
		p.policy.Note(id)
		return fr.data, nil
	}
	p.misses++
	data, err := p.readRaw(id)
	if err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: data}
	if err := p.insertFrame(fr); err != nil {
		return nil, err
	}
	return fr.data, nil
}

// storeLocked writes a page through the pool (write-back).
func (p *Pager) storeLocked(id PageID, payload []byte) error {
	if fr, ok := p.frames[id]; ok {
		copy(fr.data, payload)
		fr.dirty = true
		p.policy.Note(id)
		return nil
	}
	fr := &frame{id: id, data: append([]byte(nil), payload...), dirty: true}
	return p.insertFrame(fr)
}

func (p *Pager) insertFrame(fr *frame) error {
	for len(p.frames) >= p.capacity {
		vid, ok := p.policy.Victim()
		if !ok {
			break
		}
		victim := p.frames[vid]
		if victim.dirty {
			if err := p.writeRaw(victim.id, victim.data); err != nil {
				// Keep the victim in the pool; re-track it so the policy
				// and frame map stay consistent for a retry.
				p.policy.Note(vid)
				return err
			}
			// The write is in the OS cache but not yet synced; keep the
			// payload so a Flush retried after a failed sync can rewrite
			// it (the frame is leaving the pool).
			p.pendingEvict[victim.id] = append([]byte(nil), victim.data...)
		}
		delete(p.frames, victim.id)
		p.evictions++
	}
	p.frames[fr.id] = fr
	p.policy.Note(fr.id)
	return nil
}

// Flush writes all dirty frames and syncs the file. It returns nil only
// once everything buffered is durable; after a failure it can be retried
// and rewrites whatever the failed sync may have lost.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pager) flushLocked() error {
	if p.closed {
		return nil
	}
	if err := p.writeMeta(); err != nil {
		return err
	}
	// Rewrite evicted-but-unsynced pages first (stale copies), then dirty
	// frames in page order (newer copies win, and the write order is
	// deterministic for crash-schedule enumeration).
	evicted := make([]PageID, 0, len(p.pendingEvict))
	for id := range p.pendingEvict {
		evicted = append(evicted, id)
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
	for _, id := range evicted {
		if err := p.writeRaw(id, p.pendingEvict[id]); err != nil {
			return err
		}
	}
	var written []*frame
	ids := make([]PageID, 0, len(p.frames))
	for id := range p.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fr := p.frames[id]
		if fr.dirty {
			if err := p.writeRaw(fr.id, fr.data); err != nil {
				return err
			}
			written = append(written, fr)
		}
	}
	if err := p.f.Sync(); err != nil {
		// Sticky: nothing is marked clean, so the next Flush rewrites
		// every unsynced page and syncs again.
		p.syncFailed = true
		p.mSyncFailures.Inc()
		return fmt.Errorf("pager: sync: %w", err)
	}
	p.syncFailed = false
	p.mSyncs.Inc()
	for _, fr := range written {
		fr.dirty = false
	}
	p.pendingEvict = map[PageID][]byte{}
	return nil
}

// Pages returns the number of allocated pages, including the meta page.
func (p *Pager) Pages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.pages)
}

// Stats returns buffer pool hit/miss counters.
func (p *Pager) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// CacheStats returns the buffer pool counters as a cache layer snapshot.
func (p *Pager) CacheStats() cache.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return cache.Stats{
		Hits:        p.hits,
		Misses:      p.misses,
		Evictions:   p.evictions,
		Entries:     len(p.frames),
		UsedBytes:   int64(len(p.frames)) * PageSize,
		BudgetBytes: int64(p.capacity) * PageSize,
	}
}

// SyncFailed reports whether the most recent sync attempt failed (and the
// pager is holding unsynced state for a retry).
func (p *Pager) SyncFailed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncFailed
}

// Close flushes and closes the underlying file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		p.f.Close()
		p.closed = true
		return err
	}
	p.closed = true
	return p.f.Close()
}
