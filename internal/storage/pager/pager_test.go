package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempPager(t *testing.T, pool int) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.pg")
	p, err := Open(path, Options{PoolPages: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, path
}

func TestAllocateWriteRead(t *testing.T) {
	p, _ := tempPager(t, 8)
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("allocated page 0")
	}
	payload := []byte("hello pages")
	if err := p.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("read back %q", got[:len(payload)])
	}
	if len(got) != PayloadSize {
		t.Errorf("payload length %d", len(got))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.pg")
	p, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	if err := p.Write(id, []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:10]) != "persist me" {
		t.Errorf("after reopen: %q", got[:10])
	}
	if p2.Pages() != 2 {
		t.Errorf("pages = %d, want 2", p2.Pages())
	}
}

func TestFreeListReuse(t *testing.T) {
	p, _ := tempPager(t, 8)
	a, _ := p.Allocate()
	b, _ := p.Allocate()
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Allocate()
	if c != a {
		t.Errorf("freed page not reused: got %d want %d", c, a)
	}
	// Freed-then-reused page starts zeroed.
	got, _ := p.Read(c)
	for _, by := range got {
		if by != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
	_ = b
	if err := p.Free(0); err == nil {
		t.Error("freeing page 0 should fail")
	}
	if err := p.Free(999); err == nil {
		t.Error("freeing unallocated page should fail")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	p, _ := tempPager(t, 2) // tiny pool forces eviction
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(id, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		got, err := p.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Errorf("page %d: got %d want %d", id, got[0], i+1)
		}
	}
	hits, misses := p.Stats()
	if misses == 0 {
		t.Error("expected pool misses with tiny pool")
	}
	_ = hits
}

func TestChecksumDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.pg")
	p, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	p.Write(id, []byte("important"))
	p.Close()

	// Corrupt one byte of the page payload on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(id)*PageSize+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.Read(id); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted read: %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	p, _ := tempPager(t, 4)
	id, _ := p.Allocate()
	if err := p.Write(id, make([]byte, PayloadSize+1)); err == nil {
		t.Error("oversized payload should fail")
	}
	if err := p.Write(999, []byte("x")); err == nil {
		t.Error("writing unallocated page should fail")
	}
}

func TestClosedOperations(t *testing.T) {
	p, _ := tempPager(t, 4)
	id, _ := p.Allocate()
	p.Close()
	if _, err := p.Read(id); err == nil {
		t.Error("read after close should fail")
	}
	if err := p.Write(id, nil); err == nil {
		t.Error("write after close should fail")
	}
	if _, err := p.Allocate(); err == nil {
		t.Error("allocate after close should fail")
	}
	if err := p.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestBadFileSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.pg")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("misaligned file should fail to open")
	}
}
