package tx

import (
	"errors"
	"testing"

	"gdbm/internal/storage/vfs"
	"gdbm/internal/storage/wal"
)

// TestCommitFailureRunsUndo pins the Commit contract: when the WAL append
// or sync fails, the undo chain runs before Commit returns, so callers
// never observe committed-in-memory-but-not-durable state.
func TestCommitFailureRunsUndo(t *testing.T) {
	fs := vfs.NewFaultFS()
	log, err := wal.OpenFS(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	m := NewManager(log)

	x := 0
	tr := m.Begin()
	x = 42 // the in-memory mutation
	if err := tr.OnAbort(func() error { x = 0; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := tr.Record([]byte("set x=42")); err != nil {
		t.Fatal(err)
	}
	// Fail the commit's sync.
	fs.SetFaults(vfs.Fault{Kind: vfs.FailSync, Op: fs.Ops() + 2}) // append write, then sync
	if err := tr.Commit(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("commit = %v", err)
	}
	if x != 0 {
		t.Fatalf("mutation survived failed commit: x = %d", x)
	}
	// The manager lock was released: a new transaction can run.
	done := make(chan struct{})
	go func() {
		t2 := m.Begin()
		t2.Abort()
		close(done)
	}()
	<-done
}

// TestCommitAppendFailureRunsUndoInReverse checks ordering and that a
// failed append (not just sync) triggers the rollback.
func TestCommitAppendFailureRunsUndoInReverse(t *testing.T) {
	fs := vfs.NewFaultFS()
	log, err := wal.OpenFS(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	m := NewManager(log)

	var order []int
	tr := m.Begin()
	tr.OnAbort(func() error { order = append(order, 1); return nil })
	tr.OnAbort(func() error { order = append(order, 2); return nil })
	tr.Record([]byte("r"))
	fs.SetFaults(vfs.Fault{Kind: vfs.FailWrite, Op: fs.Ops() + 1})
	if err := tr.Commit(); err == nil {
		t.Fatal("commit should fail")
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v, want [2 1]", order)
	}
}

// TestUpdateRollsBackOnCommitFailure: the Update helper surfaces the
// commit error and the undo chain has run.
func TestUpdateRollsBackOnCommitFailure(t *testing.T) {
	fs := vfs.NewFaultFS()
	log, err := wal.OpenFS(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	m := NewManager(log)

	state := map[string]int{}
	fs.SetFaults(vfs.Fault{Kind: vfs.FailSync, Op: 2}) // append = op 1, commit sync = op 2
	err = m.Update(func(tr *Tx) error {
		state["k"] = 7
		tr.OnAbort(func() error { delete(state, "k"); return nil })
		return tr.Record([]byte("put k 7"))
	})
	if err == nil {
		t.Fatal("update should fail")
	}
	if _, ok := state["k"]; ok {
		t.Fatalf("state not rolled back: %v", state)
	}
}
