// Package tx provides the transaction engine used by engines that advertise
// transactional operation: a single-writer / multi-reader manager with undo
// on abort and optional WAL-backed redo logging. The surveyed paper lists a
// "transaction engine" among the components a system must provide to count
// as a graph database (Section II); this package is that component.
package tx

import (
	"errors"
	"fmt"
	"sync"

	"gdbm/internal/storage/wal"
)

// ErrDone is returned by operations on a committed or aborted transaction.
var ErrDone = errors.New("tx: transaction already finished")

// Manager coordinates transactions over one database instance.
type Manager struct {
	mu     sync.RWMutex // writer lock held for the lifetime of a write tx
	log    *wal.Log     // optional
	nextID uint64
	idMu   sync.Mutex
}

// NewManager returns a manager. log may be nil for engines without
// durability.
func NewManager(log *wal.Log) *Manager {
	return &Manager{log: log}
}

// Tx is a unit of work. Write transactions hold the manager's writer lock
// until Commit or Abort; read transactions hold the reader lock.
type Tx struct {
	m        *Manager
	id       uint64
	readOnly bool
	done     bool
	undo     []func() error
	records  [][]byte
	onCommit []func() error
}

// Begin starts a write transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock() //gdbvet:allow(lockdiscipline): writer lock spans the transaction lifetime; (*Tx).release unlocks on Commit/Abort
	return &Tx{m: m, id: m.allocID()}
}

// BeginRead starts a read-only transaction.
func (m *Manager) BeginRead() *Tx {
	m.mu.RLock() //gdbvet:allow(lockdiscipline): reader lock spans the transaction lifetime; (*Tx).release unlocks on Commit/Abort
	return &Tx{m: m, id: m.allocID(), readOnly: true}
}

func (m *Manager) allocID() uint64 {
	m.idMu.Lock()
	defer m.idMu.Unlock()
	m.nextID++
	return m.nextID
}

// ID returns the transaction identifier.
func (t *Tx) ID() uint64 { return t.id }

// ReadOnly reports whether the transaction is read-only.
func (t *Tx) ReadOnly() bool { return t.readOnly }

// OnAbort registers an undo action, run in reverse order if the transaction
// aborts. Engines register the inverse of each applied mutation.
func (t *Tx) OnAbort(undo func() error) error {
	if t.done {
		return ErrDone
	}
	if t.readOnly {
		return fmt.Errorf("tx %d: OnAbort on read-only transaction", t.id)
	}
	t.undo = append(t.undo, undo)
	return nil
}

// Record queues a redo record to be appended to the WAL at commit.
func (t *Tx) Record(payload []byte) error {
	if t.done {
		return ErrDone
	}
	if t.readOnly {
		return fmt.Errorf("tx %d: Record on read-only transaction", t.id)
	}
	t.records = append(t.records, append([]byte(nil), payload...))
	return nil
}

// OnCommit registers a hook run after the WAL records are durable.
func (t *Tx) OnCommit(fn func() error) error {
	if t.done {
		return ErrDone
	}
	t.onCommit = append(t.onCommit, fn)
	return nil
}

// Commit makes the transaction's effects durable and releases its lock.
// If the WAL append or sync fails, the transaction's undo chain runs
// before Commit returns, so callers never observe mutations that were
// applied in memory but not made durable. OnCommit hooks run only after
// the records are durable; a hook failure is reported but not rolled back
// (the durable log already holds the transaction).
func (t *Tx) Commit() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	defer t.release()
	if !t.readOnly && t.m.log != nil && len(t.records) > 0 {
		if err := t.appendRecords(); err != nil {
			if uerr := t.runUndo(); uerr != nil {
				return fmt.Errorf("%w (rollback also failed: %v)", err, uerr)
			}
			return err
		}
	}
	for _, fn := range t.onCommit {
		if err := fn(); err != nil {
			return fmt.Errorf("tx %d: commit hook: %w", t.id, err)
		}
	}
	return nil
}

func (t *Tx) appendRecords() error {
	for _, r := range t.records {
		if _, err := t.m.log.Append(r); err != nil {
			return fmt.Errorf("tx %d: wal append: %w", t.id, err)
		}
	}
	if err := t.m.log.Sync(); err != nil {
		return fmt.Errorf("tx %d: wal sync: %w", t.id, err)
	}
	return nil
}

// runUndo executes the undo chain in reverse order, reporting the first
// failure but running every action regardless.
func (t *Tx) runUndo() error {
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tx %d: undo: %w", t.id, err)
		}
	}
	return firstErr
}

// Abort rolls back the transaction by running undo actions in reverse order
// and releases its lock.
func (t *Tx) Abort() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	defer t.release()
	return t.runUndo()
}

func (t *Tx) release() {
	if t.readOnly {
		t.m.mu.RUnlock()
	} else {
		t.m.mu.Unlock()
	}
}

// Update runs fn inside a write transaction, committing on nil and aborting
// on error.
func (m *Manager) Update(fn func(*Tx) error) error {
	t := m.Begin()
	if err := fn(t); err != nil {
		if aerr := t.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return err
	}
	return t.Commit()
}

// View runs fn inside a read-only transaction. A read-only Commit cannot
// write, but it can still report a misuse error (double completion), so
// its error joins fn's instead of being dropped by a bare defer; the
// deferred closure keeps the lock released even if fn panics.
func (m *Manager) View(fn func(*Tx) error) (err error) {
	t := m.BeginRead()
	defer func() {
		if cerr := t.Commit(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return fn(t)
}
