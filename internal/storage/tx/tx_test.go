package tx

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"gdbm/internal/storage/wal"
)

func TestCommitRunsHooks(t *testing.T) {
	m := NewManager(nil)
	ran := false
	err := m.Update(func(tx *Tx) error {
		return tx.OnCommit(func() error { ran = true; return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("commit hook did not run")
	}
}

func TestAbortRunsUndoInReverse(t *testing.T) {
	m := NewManager(nil)
	var order []int
	err := m.Update(func(tx *Tx) error {
		tx.OnAbort(func() error { order = append(order, 1); return nil })
		tx.OnAbort(func() error { order = append(order, 2); return nil })
		return fmt.Errorf("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("undo order = %v", order)
	}
}

func TestCommitSkipsUndo(t *testing.T) {
	m := NewManager(nil)
	ran := false
	m.Update(func(tx *Tx) error {
		tx.OnAbort(func() error { ran = true; return nil })
		return nil
	})
	if ran {
		t.Error("undo ran on commit")
	}
}

func TestDoubleFinish(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Errorf("abort after commit: %v", err)
	}
	if err := tx.OnAbort(func() error { return nil }); !errors.Is(err, ErrDone) {
		t.Errorf("OnAbort after finish: %v", err)
	}
	if err := tx.Record(nil); !errors.Is(err, ErrDone) {
		t.Errorf("Record after finish: %v", err)
	}
}

func TestReadOnlyRestrictions(t *testing.T) {
	m := NewManager(nil)
	err := m.View(func(tx *Tx) error {
		if !tx.ReadOnly() {
			t.Error("View tx should be read-only")
		}
		if err := tx.OnAbort(func() error { return nil }); err == nil {
			t.Error("OnAbort should fail on read-only tx")
		}
		if err := tx.Record([]byte("x")); err == nil {
			t.Error("Record should fail on read-only tx")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWALRecordsOnCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.wal")
	log, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	m := NewManager(log)
	m.Update(func(tx *Tx) error {
		tx.Record([]byte("r1"))
		tx.Record([]byte("r2"))
		return nil
	})
	// Aborted records are not written.
	m.Update(func(tx *Tx) error {
		tx.Record([]byte("never"))
		return fmt.Errorf("abort")
	})
	var got []string
	log.Replay(func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Errorf("wal records = %v", got)
	}
}

func TestWriterExclusion(t *testing.T) {
	m := NewManager(nil)
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Update(func(tx *Tx) error {
				c := counter
				counter = c + 1
				return nil
			})
		}()
	}
	wg.Wait()
	if counter != 50 {
		t.Errorf("counter = %d, want 50 (writers not serialized)", counter)
	}
}

func TestConcurrentReaders(t *testing.T) {
	m := NewManager(nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.View(func(tx *Tx) error { return nil })
		}()
	}
	wg.Wait()
}

func TestTxIDsUnique(t *testing.T) {
	m := NewManager(nil)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		if seen[tx.ID()] {
			t.Fatalf("duplicate id %d", tx.ID())
		}
		seen[tx.ID()] = true
		tx.Commit()
	}
}

func TestAbortErrorPropagates(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	tx.OnAbort(func() error { return fmt.Errorf("undo failed") })
	if err := tx.Abort(); err == nil {
		t.Error("abort should surface undo error")
	}
}
