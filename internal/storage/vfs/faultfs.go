package vfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the base error of every injected fault.
var ErrInjected = errors.New("vfs: injected fault")

// ErrPowerCut is returned by every operation after a simulated power cut,
// until Recover is called. It wraps ErrInjected.
var ErrPowerCut = fmt.Errorf("%w: simulated power cut", ErrInjected)

// FaultKind selects the failure a Fault injects.
type FaultKind int

const (
	// FaultNone is the zero value; the fault is ignored.
	FaultNone FaultKind = iota
	// FailWrite makes the scheduled write return an error without writing
	// anything.
	FailWrite
	// TornWrite makes the scheduled write persist only a prefix directly
	// to durable storage (as if the platter was mid-sector when power
	// died) and then cuts power.
	TornWrite
	// FailSync makes the scheduled sync return an error. Following the
	// post-fsyncgate kernel contract, the file's unsynced writes are
	// marked clean but NOT made durable: a later sync that is not
	// preceded by fresh writes silently persists nothing.
	FailSync
	// CorruptRead flips a bit in the bytes returned by the scheduled
	// read, without touching the stored data.
	CorruptRead
	// PowerCut freezes every file at its last-synced content instead of
	// executing the scheduled operation.
	PowerCut
)

// Keep sentinels for Fault.Keep.
const (
	// KeepHalf persists the first half of the torn write.
	KeepHalf = -1
	// KeepAllButOne persists all but the final byte of the torn write.
	KeepAllButOne = -2
)

// Fault schedules one deterministic failure. Op is the 1-based index into
// the stream of durability operations (writes, syncs, truncates — see
// OpLog) or, for CorruptRead, into the stream of reads.
type Fault struct {
	Kind FaultKind
	Op   int
	// Keep is the number of bytes a TornWrite persists (clamped to the
	// write size minus one); KeepHalf and KeepAllButOne are sentinels.
	Keep int
	// Sticky makes a FailSync permanent: every later sync on the
	// filesystem fails too, until Recover.
	Sticky bool
}

// span is a half-open byte interval of a file written since the last
// successful sync.
type span struct{ off, end int64 }

type memFile struct {
	name string
	// disk is the durable content: what survives a power cut.
	disk []byte
	// buf is the content seen by reads: disk plus unsynced writes (the
	// OS page cache).
	buf []byte
	// pending are the buf intervals written since the last successful
	// sync; a successful sync copies them onto disk.
	pending []span
	// pendingTrunc is the smallest length the file was truncated to
	// since the last successful sync, or -1.
	pendingTrunc int64
}

func (f *memFile) writeBuf(p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, end-int64(len(f.buf)))...)
	}
	copy(f.buf[off:end], p)
	if len(p) > 0 {
		f.pending = append(f.pending, span{off, end})
	}
}

// writeDisk writes directly to durable storage (torn-write prefixes).
func (f *memFile) writeDisk(p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(f.disk)) {
		f.disk = append(f.disk, make([]byte, end-int64(len(f.disk)))...)
	}
	copy(f.disk[off:end], p)
}

func (f *memFile) truncate(size int64) {
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
		// Clip pending intervals to the new length.
		kept := f.pending[:0]
		for _, s := range f.pending {
			if s.off >= size {
				continue
			}
			if s.end > size {
				s.end = size
			}
			kept = append(kept, s)
		}
		f.pending = kept
	} else {
		old := int64(len(f.buf))
		f.buf = append(f.buf, make([]byte, size-old)...)
		f.pending = append(f.pending, span{old, size})
	}
	if f.pendingTrunc < 0 || size < f.pendingTrunc {
		f.pendingTrunc = size
	}
}

// syncOK applies the pending truncation and intervals to durable storage.
func (f *memFile) syncOK() {
	if f.pendingTrunc >= 0 && f.pendingTrunc < int64(len(f.disk)) {
		f.disk = f.disk[:f.pendingTrunc]
	}
	for _, s := range f.pending {
		if s.end > int64(len(f.buf)) {
			s.end = int64(len(f.buf))
		}
		if s.off >= s.end {
			continue
		}
		f.writeDisk(f.buf[s.off:s.end], s.off)
	}
	f.pending = nil
	f.pendingTrunc = -1
}

// syncDropped models the post-fsyncgate kernel: the error is reported
// once and the dirty intervals are marked clean without reaching disk.
// The page cache (buf) keeps the data, so reads still see it.
func (f *memFile) syncDropped() {
	f.pending = nil
	f.pendingTrunc = -1
}

// FaultFS is an in-memory filesystem with deterministic fault injection.
// All methods are safe for concurrent use. The zero value is not usable;
// call NewFaultFS.
type FaultFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	faults []Fault

	ops   int    // durability operations executed (writes, syncs, truncates)
	reads int    // reads executed
	opLog []byte // one byte per durability op: 'w', 's' or 't'

	down       bool // power is off
	gen        int  // bumped at each power cut; stale handles fail
	stickySync bool // every sync fails until Recover
	triggered  bool // at least one scheduled fault fired
	tmpSeq     int  // TempDir name counter
}

// NewFaultFS returns an empty fault-injection filesystem with no faults
// scheduled.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*memFile{}}
}

// SetFaults replaces the fault schedule and resets the Triggered flag, so
// Triggered afterwards reports on the new schedule only. Counters are not
// reset: Op indexes keep counting from the filesystem's creation (or use
// Ops and Reads to offset into the future).
func (fs *FaultFS) SetFaults(faults ...Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = append([]Fault(nil), faults...)
	fs.triggered = false
}

// Ops returns the number of durability operations executed so far.
func (fs *FaultFS) Ops() int { fs.mu.Lock(); defer fs.mu.Unlock(); return fs.ops }

// Reads returns the number of reads executed so far.
func (fs *FaultFS) Reads() int { fs.mu.Lock(); defer fs.mu.Unlock(); return fs.reads }

// OpLog returns one byte per durability op executed: 'w' (write), 's'
// (sync), 't' (truncate).
func (fs *FaultFS) OpLog() []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]byte(nil), fs.opLog...)
}

// Triggered reports whether any scheduled fault has fired.
func (fs *FaultFS) Triggered() bool { fs.mu.Lock(); defer fs.mu.Unlock(); return fs.triggered }

// Durable returns a copy of the durable (post-power-cut) content of path.
func (fs *FaultFS) Durable(path string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[path]; ok {
		return append([]byte(nil), f.disk...)
	}
	return nil
}

// Install sets both the durable and visible content of path, as if it had
// been written and synced. It is a test helper and does not count ops.
func (fs *FaultFS) Install(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = &memFile{
		name:         path,
		disk:         append([]byte(nil), data...),
		buf:          append([]byte(nil), data...),
		pendingTrunc: -1,
	}
}

// PowerCut freezes every file at its last-synced content and fails every
// subsequent operation (including on open handles) with ErrPowerCut.
func (fs *FaultFS) PowerCut() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cutLocked()
}

func (fs *FaultFS) cutLocked() {
	for _, f := range fs.files {
		f.buf = append([]byte(nil), f.disk...)
		f.pending = nil
		f.pendingTrunc = -1
	}
	fs.down = true
	fs.gen++
}

// Recover simulates a reboot after a crash: if power was not already cut
// it is cut now (unsynced writes are lost), then the machine comes back
// up with the fault schedule cleared. Handles opened before the crash
// stay dead.
func (fs *FaultFS) Recover() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.down {
		fs.cutLocked()
	}
	fs.down = false
	fs.faults = nil
	fs.stickySync = false
}

// matchLocked returns the scheduled fault firing at the current op index
// for an op of the given kind byte ('w', 's', 't'), or nil.
func (fs *FaultFS) matchLocked(op byte) *Fault {
	for i := range fs.faults {
		f := &fs.faults[i]
		if f.Op != fs.ops || f.Kind == FaultNone || f.Kind == CorruptRead {
			continue
		}
		switch f.Kind {
		case PowerCut:
			return f
		case FailWrite, TornWrite:
			if op == 'w' {
				return f
			}
		case FailSync:
			if op == 's' {
				return f
			}
		}
	}
	return nil
}

func (fs *FaultFS) matchReadLocked() *Fault {
	for i := range fs.faults {
		f := &fs.faults[i]
		if f.Kind == CorruptRead && f.Op == fs.reads {
			return f
		}
	}
	return nil
}

// OpenFile implements FS. Opening a missing file creates it empty; file
// creation itself is treated as durable (the equivalent of a synced
// parent directory).
func (fs *FaultFS) OpenFile(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return nil, ErrPowerCut
	}
	f, ok := fs.files[path]
	if !ok {
		f = &memFile{name: path, pendingTrunc: -1}
		fs.files[path] = f
	}
	return &faultFile{fs: fs, f: f, gen: fs.gen}, nil
}

// MkdirAll implements FS. The in-memory namespace is flat, so directory
// creation only has to respect the power state.
func (fs *FaultFS) MkdirAll(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return ErrPowerCut
	}
	return nil
}

// RemoveAll implements FS: it deletes path and every file under it.
func (fs *FaultFS) RemoveAll(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return ErrPowerCut
	}
	for name := range fs.files {
		if name == path || (len(name) > len(path) && name[:len(path)] == path && name[len(path)] == '/') {
			delete(fs.files, name)
		}
	}
	return nil
}

// TempDir implements FS with a deterministic unique name.
func (fs *FaultFS) TempDir(pattern string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return "", ErrPowerCut
	}
	fs.tmpSeq++
	return fmt.Sprintf("/tmp/%s%d", pattern, fs.tmpSeq), nil
}

type faultFile struct {
	fs  *FaultFS
	f   *memFile
	gen int
}

func (h *faultFile) liveLocked() error {
	if h.fs.down || h.gen != h.fs.gen {
		return ErrPowerCut
	}
	return nil
}

func tornKeep(keep, n int) int {
	switch keep {
	case KeepHalf:
		keep = n / 2
	case KeepAllButOne:
		keep = n - 1
	}
	if keep < 0 {
		keep = 0
	}
	if keep >= n {
		keep = n - 1
	}
	if keep < 0 { // n == 0
		keep = 0
	}
	return keep
}

func (h *faultFile) WriteAt(p []byte, off int64) (int, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := h.liveLocked(); err != nil {
		return 0, err
	}
	fs.ops++
	fs.opLog = append(fs.opLog, 'w')
	if f := fs.matchLocked('w'); f != nil {
		fs.triggered = true
		switch f.Kind {
		case PowerCut:
			fs.cutLocked()
			return 0, ErrPowerCut
		case FailWrite:
			return 0, fmt.Errorf("%w: write %s at %d failed", ErrInjected, h.f.name, off)
		case TornWrite:
			keep := tornKeep(f.Keep, len(p))
			h.f.writeDisk(p[:keep], off)
			fs.cutLocked()
			return keep, fmt.Errorf("torn write %s at %d (%d of %d bytes): %w",
				h.f.name, off, keep, len(p), ErrPowerCut)
		}
	}
	h.f.writeBuf(p, off)
	return len(p), nil
}

func (h *faultFile) Sync() error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := h.liveLocked(); err != nil {
		return err
	}
	fs.ops++
	fs.opLog = append(fs.opLog, 's')
	if f := fs.matchLocked('s'); f != nil {
		fs.triggered = true
		switch f.Kind {
		case PowerCut:
			fs.cutLocked()
			return ErrPowerCut
		case FailSync:
			h.f.syncDropped()
			if f.Sticky {
				fs.stickySync = true
			}
			return fmt.Errorf("%w: sync %s failed", ErrInjected, h.f.name)
		}
	}
	if fs.stickySync {
		h.f.syncDropped()
		return fmt.Errorf("%w: sync %s failed (sticky)", ErrInjected, h.f.name)
	}
	h.f.syncOK()
	return nil
}

func (h *faultFile) Truncate(size int64) error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := h.liveLocked(); err != nil {
		return err
	}
	fs.ops++
	fs.opLog = append(fs.opLog, 't')
	if f := fs.matchLocked('t'); f != nil && f.Kind == PowerCut {
		fs.triggered = true
		fs.cutLocked()
		return ErrPowerCut
	}
	h.f.truncate(size)
	return nil
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := h.liveLocked(); err != nil {
		return 0, err
	}
	fs.reads++
	n := 0
	if off < int64(len(h.f.buf)) {
		n = copy(p, h.f.buf[off:])
	}
	if f := fs.matchReadLocked(); f != nil && n > 0 {
		fs.triggered = true
		p[0] ^= 0x80 // silent corruption: no error reported
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultFile) Size() (int64, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := h.liveLocked(); err != nil {
		return 0, err
	}
	return int64(len(h.f.buf)), nil
}

// Close is a no-op: durability comes only from Sync. Closing a stale
// handle after a power cut is allowed (cleanup paths call Close).
func (h *faultFile) Close() error { return nil }

var (
	_ FS   = (*FaultFS)(nil)
	_ File = (*faultFile)(nil)
)
