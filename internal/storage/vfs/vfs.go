// Package vfs abstracts the filesystem surface the disk-backed storage
// stack (wal, pager, kv) and the command-line tools use, so that
// durability claims can be tested under injected failures instead of
// trusted. Two implementations exist: OSFS, a passthrough to the real
// filesystem, and FaultFS, an in-memory filesystem with deterministic
// fault schedules (failed writes, torn writes, fsync failures with
// post-fsyncgate semantics, read-side corruption, and simulated power
// cuts).
//
// Everything under internal/storage, internal/engines and cmd that
// touches files must go through this package; the gdbvet analyzer
// "vfsonly" enforces that mechanically.
package vfs

import (
	"fmt"
	"io"
	"os"
)

// File is the file surface the storage layer relies on. It matches the
// subset of *os.File the wal and pager use.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// FS is the filesystem surface. Opening a missing file creates it (the
// storage layer always opens read-write-create); the directory
// operations exist so the command-line tools can route every byte of
// file I/O through the same seam the crash harness instruments.
type FS interface {
	OpenFile(path string) (File, error)
	// MkdirAll creates a directory path together with any necessary
	// parents.
	MkdirAll(path string) error
	// RemoveAll removes path and everything it contains.
	RemoveAll(path string) error
	// TempDir creates a new unique directory and returns its path.
	TempDir(pattern string) (string, error)
}

// OSFS is the passthrough filesystem singleton.
var OSFS FS = osFS{}

// OS returns the passthrough filesystem.
func OS() FS { return OSFS }

type osFS struct{}

func (osFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) //gdbvet:allow(vfsonly): this is the single OS boundary every other package routes through
	if err != nil {
		return nil, fmt.Errorf("vfs: open %s: %w", path, err)
	}
	return osFile{f}, nil
}

func (osFS) MkdirAll(path string) error {
	return os.MkdirAll(path, 0o755) //gdbvet:allow(vfsonly): OS boundary
}

func (osFS) RemoveAll(path string) error {
	return os.RemoveAll(path) //gdbvet:allow(vfsonly): OS boundary
}

func (osFS) TempDir(pattern string) (string, error) {
	return os.MkdirTemp("", pattern) //gdbvet:allow(vfsonly): OS boundary
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// NewReader returns an io.Reader over the current contents of f.
func NewReader(f File) (io.Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	return io.NewSectionReader(readerAt{f}, 0, size), nil
}

type readerAt struct{ f File }

func (r readerAt) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }

// Writer is a sequential io.Writer over a File. Callers that replace a
// file's contents should Truncate(0) first; Sync durability stays the
// caller's responsibility.
type Writer struct {
	f   File
	off int64
}

// NewWriter returns a Writer appending at offset 0.
func NewWriter(f File) *Writer { return &Writer{f: f} }

func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Create opens path on fs with fresh (truncated) contents and returns
// the file together with a sequential Writer over it — the vfs analogue
// of os.Create for the command-line tools. The caller owns Close (and
// Sync, if durability matters).
func Create(fs FS, path string) (File, *Writer, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, NewWriter(f), nil
}
