// Package vfs abstracts the filesystem surface the disk-backed storage
// stack (wal, pager, kv) uses, so that durability claims can be tested
// under injected failures instead of trusted. Two implementations exist:
// OS, a passthrough to the real filesystem, and FaultFS, an in-memory
// filesystem with deterministic fault schedules (failed writes, torn
// writes, fsync failures with post-fsyncgate semantics, read-side
// corruption, and simulated power cuts).
package vfs

import (
	"fmt"
	"os"
)

// File is the file surface the storage layer relies on. It matches the
// subset of *os.File the wal and pager use.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// FS opens files. Opening a missing file creates it (the storage layer
// always opens read-write-create).
type FS interface {
	OpenFile(path string) (File, error)
}

// OS returns the passthrough filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs: open %s: %w", path, err)
	}
	return osFile{f}, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
