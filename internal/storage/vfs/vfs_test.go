package vfs

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	fs := OS()
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 5 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 2 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSUnsyncedWritesLostAtPowerCut(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("durable"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("volatile"), 0)
	// Reads see the page cache.
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "volatile" {
		t.Fatalf("read %q", buf)
	}
	fs.PowerCut()
	if _, err := f.WriteAt([]byte("z"), 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v", err)
	}
	fs.Recover()
	// The stale handle stays dead; a fresh open sees only synced bytes.
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("stale handle read: %v", err)
	}
	f2, err := fs.OpenFile("x")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f2.Size()
	if sz != 7 {
		t.Fatalf("size after recover = %d", sz)
	}
	got := make([]byte, 7)
	f2.ReadAt(got, 0)
	if string(got) != "durable" {
		t.Fatalf("recovered %q", got)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("base"), 0)
	f.Sync() // ops: w=1 s=2
	fs.SetFaults(Fault{Kind: TornWrite, Op: 3, Keep: 2})
	n, err := f.WriteAt([]byte("XYZW"), 4)
	if n != 2 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	fs.Recover()
	if got := fs.Durable("x"); !bytes.Equal(got, []byte("baseXY")) {
		t.Fatalf("durable = %q", got)
	}
}

func TestFaultFSFsyncgateSemantics(t *testing.T) {
	// After a failed sync the dirty range is marked clean without
	// reaching disk; a later sync with no fresh writes persists nothing.
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("aaaa"), 0) // op 1
	fs.SetFaults(Fault{Kind: FailSync, Op: 2})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v", err)
	}
	if err := f.Sync(); err != nil { // op 3: succeeds, persists nothing
		t.Fatal(err)
	}
	if got := fs.Durable("x"); len(got) != 0 {
		t.Fatalf("durable after lying sync = %q", got)
	}
	// Rewriting the range re-dirties it; the next sync persists it.
	f.WriteAt([]byte("bbbb"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Durable("x"); !bytes.Equal(got, []byte("bbbb")) {
		t.Fatalf("durable after rewrite = %q", got)
	}
}

func TestFaultFSStickySync(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("a"), 0)
	fs.SetFaults(Fault{Kind: FailSync, Op: 2, Sticky: true})
	if err := f.Sync(); err == nil {
		t.Fatal("want sync failure")
	}
	f.WriteAt([]byte("b"), 0)
	if err := f.Sync(); err == nil {
		t.Fatal("sticky sync should keep failing")
	}
	fs.Recover()
	f2, _ := fs.OpenFile("x")
	if err := f2.Sync(); err != nil {
		t.Fatalf("sync after recover: %v", err)
	}
}

func TestFaultFSFailWrite(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	fs.SetFaults(Fault{Kind: FailWrite, Op: 1})
	if _, err := f.WriteAt([]byte("a"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v", err)
	}
	if sz, _ := f.Size(); sz != 0 {
		t.Fatalf("failed write changed size to %d", sz)
	}
	// Later writes proceed.
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSCorruptRead(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("abcd"), 0)
	fs.SetFaults(Fault{Kind: CorruptRead, Op: 2})
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "abcd" {
		t.Fatalf("read 1 = %q, %v", buf, err)
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("corrupt read must be silent, got %v", err)
	}
	if string(buf) == "abcd" {
		t.Fatal("read 2 should be corrupted")
	}
	if !fs.Triggered() {
		t.Fatal("fault not marked triggered")
	}
}

func TestFaultFSTruncateDurability(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("abcdef"), 0)
	f.Sync()
	// An unsynced truncate does not survive a power cut.
	f.Truncate(2)
	fs.Recover()
	if got := fs.Durable("x"); !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("unsynced truncate persisted: %q", got)
	}
	// A synced truncate does.
	f2, _ := fs.OpenFile("x")
	f2.Truncate(2)
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Recover()
	if got := fs.Durable("x"); !bytes.Equal(got, []byte("ab")) {
		t.Fatalf("synced truncate lost: %q", got)
	}
	// Truncate followed by rewrite from scratch.
	f3, _ := fs.OpenFile("x")
	f3.Truncate(0)
	f3.WriteAt([]byte("zz"), 0)
	f3.Sync()
	if got := fs.Durable("x"); !bytes.Equal(got, []byte("zz")) {
		t.Fatalf("truncate+write = %q", got)
	}
}

func TestFaultFSShortRead(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read = %d, %v", n, err)
	}
	n, err = f.ReadAt(buf, 10)
	if n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
}

func TestFaultFSOpLog(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.OpenFile("x")
	f.WriteAt([]byte("a"), 0)
	f.Sync()
	f.Truncate(0)
	f.Sync()
	if got := string(fs.OpLog()); got != "wsts" {
		t.Fatalf("oplog = %q", got)
	}
	if fs.Ops() != 4 {
		t.Fatalf("ops = %d", fs.Ops())
	}
}

func TestDirOpsAndAdapters(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   FS
	}{{"os", OSFS}, {"fault", NewFaultFS()}} {
		t.Run(tc.name, func(t *testing.T) {
			dir, err := tc.fs.TempDir("vfstest")
			if err != nil {
				t.Fatalf("TempDir: %v", err)
			}
			sub := dir + "/a/b"
			if err := tc.fs.MkdirAll(sub); err != nil {
				t.Fatalf("MkdirAll: %v", err)
			}
			f, err := tc.fs.OpenFile(sub + "/x.dat")
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			w := NewWriter(f)
			if _, err := w.Write([]byte("hello ")); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if _, err := w.Write([]byte("world")); err != nil {
				t.Fatalf("Write: %v", err)
			}
			r, err := NewReader(f)
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if string(got) != "hello world" {
				t.Fatalf("round trip = %q", got)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := tc.fs.RemoveAll(dir); err != nil {
				t.Fatalf("RemoveAll: %v", err)
			}
			if ffs, ok := tc.fs.(*FaultFS); ok {
				if d := ffs.Durable(sub + "/x.dat"); d != nil {
					t.Fatalf("RemoveAll left %q", d)
				}
			}
		})
	}
}
