package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gdbm/internal/storage/vfs"
)

// appendAll builds a synced log on fs and returns its durable bytes.
func appendAll(t *testing.T, fs *vfs.FaultFS, path string, payloads [][]byte) []byte {
	t.Helper()
	l, err := OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return fs.Durable(path)
}

func replayAll(fs *vfs.FaultFS, path string) ([][]byte, error) {
	l, err := OpenFS(fs, path)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	var got [][]byte
	err = l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	return got, err
}

// TestReplayTornTailEveryOffset is the property test required by the
// crash-recovery contract: a log truncated at ANY byte offset inside the
// final frame must replay every earlier record intact and truncate the
// torn tail without error.
func TestReplayTornTailEveryOffset(t *testing.T) {
	payloads := [][]byte{
		[]byte("first-record"),
		{},
		[]byte("a-longer-third-record-with-some-padding"),
		bytes.Repeat([]byte{0xAB}, 100),
		[]byte("final-record-the-one-that-tears"),
	}
	base := appendAll(t, vfs.NewFaultFS(), "w", payloads)
	lastStart := len(base) - (8 + len(payloads[len(payloads)-1]))
	keep := payloads[:len(payloads)-1]

	for cut := lastStart; cut < len(base); cut++ {
		fs := vfs.NewFaultFS()
		fs.Install("w", base[:cut])
		got, err := replayAll(fs, "w")
		if err != nil {
			t.Fatalf("cut at %d: replay error %v", cut, err)
		}
		if len(got) != len(keep) {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), len(keep))
		}
		for i := range keep {
			if !bytes.Equal(got[i], keep[i]) {
				t.Fatalf("cut at %d: record %d = %q, want %q", cut, i, got[i], keep[i])
			}
		}
		// The torn tail is truncated durably: a second replay over the
		// recovered file sees the same records.
		if d := fs.Durable("w"); len(d) != lastStart {
			t.Fatalf("cut at %d: tail not truncated, size %d want %d", cut, len(d), lastStart)
		}
	}
}

// TestReplayCorruptTailEveryOffset flips each byte of the final frame in
// turn. Replay may report corruption or truncate the tail, but the records
// it yields must always be an exact prefix of the originals — never a
// damaged record.
func TestReplayCorruptTailEveryOffset(t *testing.T) {
	payloads := [][]byte{
		[]byte("first-record"),
		[]byte("second-record"),
		[]byte("final-record-the-one-that-corrupts"),
	}
	base := appendAll(t, vfs.NewFaultFS(), "w", payloads)
	lastStart := len(base) - (8 + len(payloads[len(payloads)-1]))

	for off := lastStart; off < len(base); off++ {
		mut := append([]byte(nil), base...)
		mut[off] ^= 0xFF
		fs := vfs.NewFaultFS()
		fs.Install("w", mut)
		got, err := replayAll(fs, "w")
		if len(got) > len(payloads) {
			t.Fatalf("flip at %d: %d records from %d appended", off, len(got), len(payloads))
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("flip at %d: record %d damaged: %q", off, i, got[i])
			}
		}
		if err == nil && len(got) < len(payloads)-1 {
			t.Fatalf("flip at %d: lost record %d without error", off, len(got))
		}
	}
}

// TestStickySyncFailure: after a failed fsync the log must refuse further
// appends and syncs until reopened (fsyncgate defense).
func TestStickySyncFailure(t *testing.T) {
	fs := vfs.NewFaultFS()
	l, err := OpenFS(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	// ops so far: w=1; fail the first sync.
	fs.SetFaults(vfs.Fault{Kind: vfs.FailSync, Op: 2})
	if err := l.Sync(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("sync = %v", err)
	}
	if _, err := l.Append([]byte("two")); err == nil {
		t.Fatal("append after failed sync must fail")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after failed sync must fail")
	}
	if err := l.Close(); err == nil {
		t.Fatal("close should surface the sticky sync error")
	}
	// After a crash the record dropped by the failed fsync is gone, which
	// is exactly what the sticky error reported; reopening clears the
	// poison.
	fs.Recover()
	got, err := replayAll(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("records after lost sync = %v", got)
	}
	l2, err := OpenFS(fs, "w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append([]byte("three")); err != nil {
		t.Fatalf("fresh log append: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayAfterPowerCutAtEveryOp drives a full append workload, cuts
// power before each durability op in turn, and checks that every record
// whose Sync was acknowledged is replayed.
func TestReplayAfterPowerCutAtEveryOp(t *testing.T) {
	const records = 6
	// Probe run to count ops.
	probe := vfs.NewFaultFS()
	l, err := OpenFS(probe, "w")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	total := probe.Ops()

	for cut := 1; cut <= total; cut++ {
		fs := vfs.NewFaultFS()
		fs.SetFaults(vfs.Fault{Kind: vfs.PowerCut, Op: cut})
		l, err := OpenFS(fs, "w")
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for i := 0; i < records; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				break
			}
			if err := l.Sync(); err != nil {
				break
			}
			acked++
		}
		l.Close()
		fs.Recover()
		got, err := replayAll(fs, "w")
		if err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		if len(got) < acked {
			t.Fatalf("cut %d: %d acked records, only %d replayed", cut, acked, len(got))
		}
		for i, g := range got {
			if want := fmt.Sprintf("rec-%d", i); string(g) != want {
				t.Fatalf("cut %d: record %d = %q", cut, i, g)
			}
		}
	}
}
