// Package wal implements a write-ahead log with CRC-framed records. Engines
// with transaction support append redo records before applying updates; on
// reopen, Replay feeds every intact record back to the engine. A torn tail
// (partial final record) is detected by CRC/length checks and truncated, the
// standard recovery contract.
//
// The log goes through vfs.File, so crash tests can run it over an injected
// fault schedule. A failed fsync is sticky: once Sync reports an error the
// log refuses further appends and syncs until it is reopened, because after
// a failed fsync the kernel may have dropped the dirty pages — retrying the
// sync and trusting its success would silently lose the records (the
// "fsyncgate" pattern).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"gdbm/internal/obs"
	"gdbm/internal/storage/vfs"
)

// frame layout: u32 length | u32 crc32(payload) | payload
const frameHeader = 8

// Log is an append-only record log.
type Log struct {
	mu      sync.Mutex
	f       vfs.File
	size    int64
	closed  bool
	syncErr error // sticky: set on first failed sync, cleared only by reopen

	// Observability counters; nil-safe no-ops until SetMetrics.
	mAppends, mSyncs, mSyncFailures *obs.Counter
}

// SetMetrics routes the log's counters (wal.appends, wal.syncs,
// wal.sync_failures) into r. Call before sharing the log.
func (l *Log) SetMetrics(r *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mAppends = r.Counter("wal.appends")
	l.mSyncs = r.Counter("wal.syncs")
	l.mSyncFailures = r.Counter("wal.sync_failures")
}

// Open opens or creates the log at path on the real filesystem.
func Open(path string) (*Log, error) { return OpenFS(vfs.OS(), path) }

// OpenFS opens or creates the log at path on fsys.
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	return &Log{f: f, size: size}, nil
}

// Append writes one record and returns its offset. The record is durable
// after the next Sync.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	if l.syncErr != nil {
		return 0, fmt.Errorf("wal: append after failed sync: %w", l.syncErr)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	off := l.size
	if _, err := l.f.WriteAt(buf, off); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.mAppends.Inc()
	return off, nil
}

// Sync forces appended records to stable storage. After Sync returns an
// error the log is poisoned: every later Append and Sync fails with the
// same error until the log is reopened.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.syncErr != nil {
		return fmt.Errorf("wal: sync after failed sync: %w", l.syncErr)
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		l.mSyncFailures.Inc()
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.mSyncs.Inc()
	return nil
}

// Replay calls fn for every intact record in order. When it encounters a
// torn or corrupt tail it truncates the log there and stops without error;
// corruption before the tail is reported.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var off int64
	hdr := make([]byte, frameHeader)
	for off < l.size {
		if l.size-off < frameHeader {
			return l.truncateLocked(off)
		}
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("wal: read header at %d: %w", off, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if off+frameHeader+int64(length) > l.size {
			return l.truncateLocked(off)
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+frameHeader); err != nil && err != io.EOF {
			return fmt.Errorf("wal: read payload at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			// A bad CRC in the final frame is a torn write; earlier it
			// is corruption.
			if off+frameHeader+int64(length) == l.size {
				return l.truncateLocked(off)
			}
			return fmt.Errorf("wal: corrupt record at offset %d", off)
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += frameHeader + int64(length)
	}
	return nil
}

func (l *Log) truncateLocked(off int64) error {
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	l.size = off
	// Make the truncation durable before replay reports success, so a
	// crash after recovery cannot resurrect the torn tail.
	if err := l.syncLocked(); err != nil {
		return err
	}
	return nil
}

// Truncate discards all records (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.size = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.syncLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
