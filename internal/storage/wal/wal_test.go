package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := tempLog(t)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := l.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i, r := range got {
		if r != fmt.Sprintf("rec-%d", i) {
			t.Errorf("record %d = %q", i, r)
		}
	}
}

func TestReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("got %v", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("complete"))
	off, _ := l.Append([]byte("will-be-torn"))
	l.Close()

	// Chop the file mid-way through the second record.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.Truncate(off + 10)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "complete" {
		t.Errorf("got %v", got)
	}
	if l2.Size() != off {
		t.Errorf("size = %d, want %d (torn tail removed)", l2.Size(), off)
	}
	// Appending after recovery works.
	if _, err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got = nil
	l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[1] != "after" {
		t.Errorf("after recovery: %v", got)
	}
}

func TestCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := Open(path)
	off1, _ := l.Append([]byte("first"))
	l.Append([]byte("second"))
	l.Close()

	// Flip a payload byte of the first record.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xFF}, off1+8)
	f.Close()

	l2, _ := Open(path)
	defer l2.Close()
	if err := l2.Replay(func(p []byte) error { return nil }); err == nil {
		t.Error("corruption before the tail should be an error")
	}
}

func TestTruncate(t *testing.T) {
	l, _ := tempLog(t)
	l.Append([]byte("x"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Errorf("size = %d", l.Size())
	}
	n := 0
	l.Replay(func(p []byte) error { n++; return nil })
	if n != 0 {
		t.Errorf("replayed %d after truncate", n)
	}
}

func TestClosedAppend(t *testing.T) {
	l, _ := tempLog(t)
	l.Close()
	if _, err := l.Append([]byte("x")); err == nil {
		t.Error("append after close should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := tempLog(t)
	l.Append([]byte("a"))
	wantErr := fmt.Errorf("stop")
	if err := l.Replay(func(p []byte) error { return wantErr }); err != wantErr {
		t.Errorf("got %v", err)
	}
}
